"""Combined similarity between two sets of arbitrary items (tokens).

Hybrid matchers apply the three combination steps of Section 6 not to schema
elements but to *components* of schema elements -- most prominently the token
sets produced by name tokenization.  Tokens are plain strings, so this module
provides a light-weight, numpy-based implementation of the same pipeline
(aggregation over several string matchers, Both/Max1 selection, Average or
Dice combined similarity) that works on any item type.

The path-level machinery in :mod:`repro.combination` is *not* reused here on
purpose: its axes are :class:`~repro.model.path.SchemaPath` objects and
wrapping tokens into fake paths would obscure rather than simplify the code.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.combination.aggregation import (
    AggregationStrategy,
    AverageAggregation,
    MaxAggregation,
    MinAggregation,
    WeightedAggregation,
)
from repro.combination.combined import CombinedSimilarityStrategy, DiceCombined
from repro.exceptions import CombinationError

#: A similarity function over two items (e.g. a bound string matcher).
ItemSimilarity = Callable[[str, str], float]


def _aggregate_layers(layers: np.ndarray, aggregation: AggregationStrategy) -> np.ndarray:
    """Collapse the first (matcher) axis of a ``k x m x n`` array."""
    if isinstance(aggregation, MaxAggregation):
        return layers.max(axis=0)
    if isinstance(aggregation, MinAggregation):
        return layers.min(axis=0)
    if isinstance(aggregation, AverageAggregation):
        return layers.mean(axis=0)
    if isinstance(aggregation, WeightedAggregation):
        raise CombinationError(
            "Weighted aggregation over token-set layers is not supported; "
            "use Max, Min or Average inside hybrid name matchers"
        )
    raise CombinationError(f"unsupported aggregation strategy for token sets: {aggregation}")


def _mutual_best_pairs(matrix: np.ndarray) -> List[Tuple[int, int, float]]:
    """Max1 selection in both directions: pairs that are each other's best candidate.

    Ties are broken by the lower index so the result is deterministic.  Cells
    with similarity 0 are never selected.
    """
    if matrix.size == 0:
        return []
    rows, columns = matrix.shape
    best_for_row = matrix.argmax(axis=1)
    best_for_column = matrix.argmax(axis=0)
    pairs: List[Tuple[int, int, float]] = []
    for i in range(rows):
        j = int(best_for_row[i])
        value = float(matrix[i, j])
        if value <= 0.0:
            continue
        if int(best_for_column[j]) == i:
            pairs.append((i, j, value))
    return pairs


def set_similarity(
    items_a: Sequence[str],
    items_b: Sequence[str],
    similarity_layers: Sequence[ItemSimilarity],
    aggregation: AggregationStrategy,
    combined: CombinedSimilarityStrategy,
) -> float:
    """The combined similarity of two item sets.

    Parameters
    ----------
    items_a / items_b:
        The two component sets (e.g. the token sets of two element names).
    similarity_layers:
        One similarity function per constituent matcher; each contributes one
        layer of the token-level similarity cube.
    aggregation:
        How to aggregate the layers per item pair (Max by default in the Name
        matcher, because tokens are typically similar according to only some
        matchers).
    combined:
        Average or Dice, applied to the mutually-best (Both + Max1) pairs.
    """
    unique_a = list(dict.fromkeys(items_a))
    unique_b = list(dict.fromkeys(items_b))
    if not unique_a or not unique_b:
        return 0.0
    if not similarity_layers:
        raise CombinationError("set_similarity requires at least one similarity layer")

    layers = np.zeros((len(similarity_layers), len(unique_a), len(unique_b)), dtype=float)
    for k, layer in enumerate(similarity_layers):
        for i, item_a in enumerate(unique_a):
            for j, item_b in enumerate(unique_b):
                layers[k, i, j] = min(1.0, max(0.0, float(layer(item_a, item_b))))

    aggregated = _aggregate_layers(layers, aggregation)
    selected = _mutual_best_pairs(aggregated)
    if not selected:
        return 0.0

    total_items = len(unique_a) + len(unique_b)
    matched_rows: Dict[int, float] = {}
    matched_columns: Dict[int, float] = {}
    for i, j, value in selected:
        matched_rows[i] = max(matched_rows.get(i, 0.0), value)
        matched_columns[j] = max(matched_columns.get(j, 0.0), value)

    if isinstance(combined, DiceCombined):
        value = (len(matched_rows) + len(matched_columns)) / total_items
    else:
        value = (sum(matched_rows.values()) + sum(matched_columns.values())) / total_items
    return min(1.0, max(0.0, value))


# ---------------------------------------------------------------------------
# Batch evaluation over a shared item vocabulary
# ---------------------------------------------------------------------------

def batch_set_similarity(
    vocabulary_matrix: np.ndarray,
    index_sets_a: Sequence[np.ndarray],
    index_sets_b: Sequence[np.ndarray],
    combined: CombinedSimilarityStrategy,
    max_chunk_elements: int = 4_000_000,
) -> np.ndarray:
    """All-pairs combined set similarity over a pre-aggregated item vocabulary.

    This is the vectorized counterpart of :func:`set_similarity` used by the
    batch Name/NamePath matchers: the per-item-pair similarities are gathered
    from ``vocabulary_matrix`` (the constituent layers aggregated once over the
    full token vocabulary) instead of being recomputed per set pair, and the
    Both/Max1 selection plus Average/Dice combination run as padded array
    operations over every ``(set_a, set_b)`` pair at once.

    Parameters
    ----------
    vocabulary_matrix:
        The aggregated item-similarity matrix, rows indexed by the source-side
        item vocabulary and columns by the target-side one (values already
        clamped to ``[0, 1]``).
    index_sets_a / index_sets_b:
        Per set, the integer row / column indices of its *deduplicated* items
        (order preserved -- ties in the Max1 selection break by item order,
        exactly as in :func:`set_similarity`).
    max_chunk_elements:
        Upper bound on the size of the intermediate 4-d gather, to keep the
        memory footprint flat for large schemas; rows of the result are
        processed in chunks accordingly.

    Returns
    -------
    A ``len(index_sets_a) x len(index_sets_b)`` matrix of combined similarities.
    """
    count_a = len(index_sets_a)
    count_b = len(index_sets_b)
    result = np.zeros((count_a, count_b), dtype=float)
    if count_a == 0 or count_b == 0:
        return result

    lengths_a = np.array([len(indices) for indices in index_sets_a], dtype=np.intp)
    lengths_b = np.array([len(indices) for indices in index_sets_b], dtype=np.intp)
    width_a = int(lengths_a.max())
    width_b = int(lengths_b.max())
    if width_a == 0 or width_b == 0:
        # One side consists only of empty sets: every similarity is 0.
        return result

    padded_a = np.zeros((count_a, width_a), dtype=np.intp)
    for row, indices in enumerate(index_sets_a):
        padded_a[row, : len(indices)] = indices
    padded_b = np.zeros((count_b, width_b), dtype=np.intp)
    for row, indices in enumerate(index_sets_b):
        padded_b[row, : len(indices)] = indices
    valid_a = np.arange(width_a)[None, :] < lengths_a[:, None]
    valid_b = np.arange(width_b)[None, :] < lengths_b[:, None]

    use_dice = isinstance(combined, DiceCombined)
    totals = lengths_a[:, None] + lengths_b[None, :]

    chunk_rows = max(1, max_chunk_elements // max(1, count_b * width_a * width_b))
    row_positions = np.arange(width_a)[None, None, :]
    for start in range(0, count_a, chunk_rows):
        stop = min(start + chunk_rows, count_a)
        # cells: (chunk, count_b, width_a, width_b); padding cells get -1 so
        # they can never win an argmax against a valid cell (valid values >= 0).
        cells = vocabulary_matrix[
            padded_a[start:stop, None, :, None], padded_b[None, :, None, :]
        ]
        mask = valid_a[start:stop, None, :, None] & valid_b[None, :, None, :]
        cells = np.where(mask, cells, -1.0)
        best_column = cells.argmax(axis=3)
        row_best_value = cells.max(axis=3)
        best_row = cells.argmax(axis=2)
        # Max1 in both directions: a row is matched iff it is its best
        # column's best row and the value is strictly positive.
        mutual_row = np.take_along_axis(best_row, best_column, axis=2) == row_positions
        matched = mutual_row & (row_best_value > 0.0)
        if use_dice:
            contribution = matched.sum(axis=2, dtype=float)
        else:
            contribution = (row_best_value * matched).sum(axis=2)
        # Each mutual pair matches exactly one row and one column, so both
        # directions contribute the same count / value sum.
        with np.errstate(divide="ignore", invalid="ignore"):
            block = np.where(
                totals[start:stop] > 0, 2.0 * contribution / totals[start:stop], 0.0
            )
        result[start:stop] = np.clip(block, 0.0, 1.0)
    return result
