"""Hybrid matchers: Name, NamePath, TypeName, Children, Leaves (Section 4.2)."""

from repro.matchers.hybrid.name import NameMatcher, NamePathMatcher, default_name_constituents
from repro.matchers.hybrid.structural import ChildrenMatcher, LeavesMatcher
from repro.matchers.hybrid.type_name import (
    DEFAULT_NAME_WEIGHT,
    DEFAULT_TYPE_WEIGHT,
    TypeNameMatcher,
)

__all__ = [
    "ChildrenMatcher",
    "DEFAULT_NAME_WEIGHT",
    "DEFAULT_TYPE_WEIGHT",
    "LeavesMatcher",
    "NameMatcher",
    "NamePathMatcher",
    "TypeNameMatcher",
    "default_name_constituents",
]
