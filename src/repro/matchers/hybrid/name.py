"""The hybrid Name and NamePath matchers (Section 4.2).

``Name`` compares element names after tokenization and abbreviation expansion:
it applies multiple simple string matchers (Trigram and Synonym by default) to
the token sets of the two names and combines the obtained token similarities
with the default strategy tuple of Table 4: (Max, Both, Max1, Average).

``NamePath`` applies the same machinery to the *hierarchical* name of an
element: the tokens of all names along the path contribute, which both adds
evidence (tokens from ancestors) and distinguishes contexts of shared elements
(``ShipTo.Street`` vs ``BillTo.Street``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.combination.aggregation import MAX, AggregationStrategy
from repro.combination.combined import AVERAGE_COMBINED, CombinedSimilarityStrategy
from repro.combination.matrix import SimilarityMatrix
from repro.matchers.base import MatchContext, PairwiseMatcher, StringMatcher
from repro.matchers.hybrid.set_similarity import (
    _aggregate_layers,
    batch_set_similarity,
    set_similarity,
)
from repro.matchers.string.ngram import TrigramMatcher
from repro.matchers.string.synonym import SynonymStringMatcher
from repro.model.path import SchemaPath


def default_name_constituents() -> List[StringMatcher]:
    """The default constituent string matchers of the Name matcher (Table 4)."""
    return [TrigramMatcher(), SynonymStringMatcher()]


class NameMatcher(PairwiseMatcher):
    """Token-set similarity of element names using several simple string matchers."""

    name = "Name"
    kind = "hybrid"

    def __init__(
        self,
        constituents: Optional[Sequence[StringMatcher]] = None,
        aggregation: AggregationStrategy = MAX,
        combined_similarity: CombinedSimilarityStrategy = AVERAGE_COMBINED,
    ):
        self._constituents: Tuple[StringMatcher, ...] = tuple(
            constituents if constituents is not None else default_name_constituents()
        )
        if not self._constituents:
            raise ValueError("NameMatcher requires at least one constituent string matcher")
        self._aggregation = aggregation
        self._combined = combined_similarity

    # -- configuration accessors -------------------------------------------------

    @property
    def constituents(self) -> Tuple[StringMatcher, ...]:
        """The constituent string matchers applied to token pairs."""
        return self._constituents

    @property
    def aggregation(self) -> AggregationStrategy:
        """The aggregation strategy over the constituent matchers' token similarities."""
        return self._aggregation

    @property
    def combined_similarity(self) -> CombinedSimilarityStrategy:
        """The combined-similarity strategy collapsing token matches into a name similarity."""
        return self._combined

    def with_combined_similarity(
        self, combined_similarity: CombinedSimilarityStrategy
    ) -> "NameMatcher":
        """A copy using a different combined-similarity strategy (Average vs Dice)."""
        return type(self)(
            constituents=self._constituents,
            aggregation=self._aggregation,
            combined_similarity=combined_similarity,
        )

    # -- token extraction ----------------------------------------------------------

    def tokens_for(self, path: SchemaPath, context: MatchContext) -> Tuple[str, ...]:
        """The token set representing ``path`` (the leaf name's tokens for Name)."""
        return context.tokenizer.tokenize(path.name)

    # -- similarity ------------------------------------------------------------------

    def _bound_layers(self, context: MatchContext):
        """Constituent similarity functions bound to the context, memoised per token pair.

        Token vocabularies are small compared to the number of path pairs, so a
        per-call cache of token-pair similarities removes the dominant cost of
        matching large schemas (the same tokens recur on many paths).
        """
        layers = []
        for constituent in self._bound_constituents(context):
            raw = constituent.similarity
            cache: dict = {}

            def memoised(a: str, b: str, _raw=raw, _cache=cache) -> float:
                key = (a, b)
                value = _cache.get(key)
                if value is None:
                    value = _raw(a, b)
                    _cache[key] = value
                return value

            layers.append(memoised)
        return layers

    def compute(self, source_paths, target_paths, context: MatchContext):
        # Bind (and memoise) the constituent layers once per compute() call so
        # every pair comparison shares the same token-pair caches.
        self._active_layers = self._bound_layers(context)
        try:
            return super().compute(source_paths, target_paths, context)
        finally:
            self._active_layers = None

    def pair_similarity(
        self, source: SchemaPath, target: SchemaPath, context: MatchContext
    ) -> float:
        layers = getattr(self, "_active_layers", None) or self._bound_layers(context)
        tokens_a = self.tokens_for(source, context)
        tokens_b = self.tokens_for(target, context)
        return set_similarity(
            tokens_a,
            tokens_b,
            layers,
            self._aggregation,
            self._combined,
        )

    def cache_key(self, path: SchemaPath, context: MatchContext) -> object:
        return self.tokens_for(path, context)

    # -- batch evaluation --------------------------------------------------------

    #: The profile token-extraction mode matching :meth:`tokens_for`; the batch
    #: path only trusts it when ``tokens_for`` is not overridden by a subclass.
    _profile_token_mode = "name"

    def _batch_token_keys(
        self, paths: Sequence[SchemaPath], context: MatchContext
    ) -> Tuple[List[Tuple[str, ...]], np.ndarray]:
        """Unique token tuples and the per-path inverse index for one side."""
        from repro.engine.profiles import unique_index

        if type(self).tokens_for in (NameMatcher.tokens_for, NamePathMatcher.tokens_for):
            profile = context.profiles(paths).token_profile(self._profile_token_mode)
            return list(profile.unique_keys), profile.inverse
        # A subclass with a custom token extraction still benefits from
        # unique-key batching, just without the shared profile cache.
        keys = [self.tokens_for(path, context) for path in paths]
        unique_keys, inverse = unique_index(keys)
        return unique_keys, inverse

    def compute_batch(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Vectorized name matching over a shared token vocabulary.

        The constituent string matchers are evaluated once over the union
        token vocabulary of both sides (the Trigram constituent as a single
        gram-incidence matrix product), aggregated, and the Both/Max1 +
        Average/Dice combination runs as one padded array operation over all
        unique token-set pairs; the result is scattered to the full matrix.
        """
        unique_a, inverse_a = self._batch_token_keys(source_paths, context)
        unique_b, inverse_b = self._batch_token_keys(target_paths, context)

        # Separate per-side vocabularies: the combination step only ever reads
        # source-token rows against target-token columns, so the constituent
        # kernels are evaluated over the |A| x |B| rectangle, not |A u B|^2.
        vocabulary_a: Dict[str, int] = {}
        for key in unique_a:
            for token in key:
                vocabulary_a.setdefault(token, len(vocabulary_a))
        vocabulary_b: Dict[str, int] = {}
        for key in unique_b:
            for token in key:
                vocabulary_b.setdefault(token, len(vocabulary_b))

        if not vocabulary_a or not vocabulary_b:
            # Every token set on (at least) one side is empty: all similarities are 0.
            return SimilarityMatrix(source_paths, target_paths)

        words_a = list(vocabulary_a)
        words_b = list(vocabulary_b)
        layers = np.stack(
            [
                np.clip(constituent.similarity_many(words_a, words_b), 0.0, 1.0)
                for constituent in self._bound_constituents(context)
            ],
            axis=0,
        )
        aggregated = _aggregate_layers(layers, self._aggregation)

        index_sets_a = [
            np.array([vocabulary_a[token] for token in dict.fromkeys(key)], dtype=np.intp)
            for key in unique_a
        ]
        index_sets_b = [
            np.array([vocabulary_b[token] for token in dict.fromkeys(key)], dtype=np.intp)
            for key in unique_b
        ]
        unique_values = batch_set_similarity(
            aggregated, index_sets_a, index_sets_b, self._combined
        )
        return SimilarityMatrix.from_unique(
            source_paths, target_paths, unique_values, inverse_a, inverse_b
        )

    def _bound_constituents(self, context: MatchContext) -> List[StringMatcher]:
        """Constituents with an unbound Synonym matcher bound to the context."""
        bound: List[StringMatcher] = []
        for constituent in self._constituents:
            if isinstance(constituent, SynonymStringMatcher) and constituent.dictionary is None:
                bound.append(constituent.bound_to(context.synonyms))
            else:
                bound.append(constituent)
        return bound


class NamePathMatcher(NameMatcher):
    """Name matching over the hierarchical (path) name of an element."""

    name = "NamePath"
    kind = "hybrid"

    def __init__(
        self,
        constituents: Optional[Sequence[StringMatcher]] = None,
        aggregation: AggregationStrategy = MAX,
        combined_similarity: CombinedSimilarityStrategy = AVERAGE_COMBINED,
        include_schema_root: bool = False,
    ):
        super().__init__(constituents, aggregation, combined_similarity)
        self._include_schema_root = bool(include_schema_root)

    def with_combined_similarity(
        self, combined_similarity: CombinedSimilarityStrategy
    ) -> "NamePathMatcher":
        return NamePathMatcher(
            constituents=self.constituents,
            aggregation=self.aggregation,
            combined_similarity=combined_similarity,
            include_schema_root=self._include_schema_root,
        )

    def tokens_for(self, path: SchemaPath, context: MatchContext) -> Tuple[str, ...]:
        names = path.names if self._include_schema_root else path.names[1:] or path.names
        return context.tokenizer.tokenize_path(names)

    @property
    def _profile_token_mode(self) -> str:  # type: ignore[override]
        return "path_with_root" if self._include_schema_root else "path"
