"""The hybrid Name and NamePath matchers (Section 4.2).

``Name`` compares element names after tokenization and abbreviation expansion:
it applies multiple simple string matchers (Trigram and Synonym by default) to
the token sets of the two names and combines the obtained token similarities
with the default strategy tuple of Table 4: (Max, Both, Max1, Average).

``NamePath`` applies the same machinery to the *hierarchical* name of an
element: the tokens of all names along the path contribute, which both adds
evidence (tokens from ancestors) and distinguishes contexts of shared elements
(``ShipTo.Street`` vs ``BillTo.Street``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.combination.aggregation import MAX, AggregationStrategy
from repro.combination.combined import AVERAGE_COMBINED, CombinedSimilarityStrategy
from repro.matchers.base import MatchContext, PairwiseMatcher, StringMatcher
from repro.matchers.hybrid.set_similarity import set_similarity
from repro.matchers.string.ngram import TrigramMatcher
from repro.matchers.string.synonym import SynonymStringMatcher
from repro.model.path import SchemaPath


def default_name_constituents() -> List[StringMatcher]:
    """The default constituent string matchers of the Name matcher (Table 4)."""
    return [TrigramMatcher(), SynonymStringMatcher()]


class NameMatcher(PairwiseMatcher):
    """Token-set similarity of element names using several simple string matchers."""

    name = "Name"
    kind = "hybrid"

    def __init__(
        self,
        constituents: Optional[Sequence[StringMatcher]] = None,
        aggregation: AggregationStrategy = MAX,
        combined_similarity: CombinedSimilarityStrategy = AVERAGE_COMBINED,
    ):
        self._constituents: Tuple[StringMatcher, ...] = tuple(
            constituents if constituents is not None else default_name_constituents()
        )
        if not self._constituents:
            raise ValueError("NameMatcher requires at least one constituent string matcher")
        self._aggregation = aggregation
        self._combined = combined_similarity

    # -- configuration accessors -------------------------------------------------

    @property
    def constituents(self) -> Tuple[StringMatcher, ...]:
        """The constituent string matchers applied to token pairs."""
        return self._constituents

    @property
    def aggregation(self) -> AggregationStrategy:
        """The aggregation strategy over the constituent matchers' token similarities."""
        return self._aggregation

    @property
    def combined_similarity(self) -> CombinedSimilarityStrategy:
        """The combined-similarity strategy collapsing token matches into a name similarity."""
        return self._combined

    def with_combined_similarity(
        self, combined_similarity: CombinedSimilarityStrategy
    ) -> "NameMatcher":
        """A copy using a different combined-similarity strategy (Average vs Dice)."""
        return type(self)(
            constituents=self._constituents,
            aggregation=self._aggregation,
            combined_similarity=combined_similarity,
        )

    # -- token extraction ----------------------------------------------------------

    def tokens_for(self, path: SchemaPath, context: MatchContext) -> Tuple[str, ...]:
        """The token set representing ``path`` (the leaf name's tokens for Name)."""
        return context.tokenizer.tokenize(path.name)

    # -- similarity ------------------------------------------------------------------

    def _bound_layers(self, context: MatchContext):
        """Constituent similarity functions bound to the context, memoised per token pair.

        Token vocabularies are small compared to the number of path pairs, so a
        per-call cache of token-pair similarities removes the dominant cost of
        matching large schemas (the same tokens recur on many paths).
        """
        layers = []
        for constituent in self._constituents:
            if isinstance(constituent, SynonymStringMatcher) and constituent.dictionary is None:
                raw = constituent.bound_to(context.synonyms).similarity
            else:
                raw = constituent.similarity
            cache: dict = {}

            def memoised(a: str, b: str, _raw=raw, _cache=cache) -> float:
                key = (a, b)
                value = _cache.get(key)
                if value is None:
                    value = _raw(a, b)
                    _cache[key] = value
                return value

            layers.append(memoised)
        return layers

    def compute(self, source_paths, target_paths, context: MatchContext):
        # Bind (and memoise) the constituent layers once per compute() call so
        # every pair comparison shares the same token-pair caches.
        self._active_layers = self._bound_layers(context)
        try:
            return super().compute(source_paths, target_paths, context)
        finally:
            self._active_layers = None

    def pair_similarity(
        self, source: SchemaPath, target: SchemaPath, context: MatchContext
    ) -> float:
        layers = getattr(self, "_active_layers", None) or self._bound_layers(context)
        tokens_a = self.tokens_for(source, context)
        tokens_b = self.tokens_for(target, context)
        return set_similarity(
            tokens_a,
            tokens_b,
            layers,
            self._aggregation,
            self._combined,
        )

    def cache_key(self, path: SchemaPath, context: MatchContext) -> object:
        return self.tokens_for(path, context)


class NamePathMatcher(NameMatcher):
    """Name matching over the hierarchical (path) name of an element."""

    name = "NamePath"
    kind = "hybrid"

    def __init__(
        self,
        constituents: Optional[Sequence[StringMatcher]] = None,
        aggregation: AggregationStrategy = MAX,
        combined_similarity: CombinedSimilarityStrategy = AVERAGE_COMBINED,
        include_schema_root: bool = False,
    ):
        super().__init__(constituents, aggregation, combined_similarity)
        self._include_schema_root = bool(include_schema_root)

    def with_combined_similarity(
        self, combined_similarity: CombinedSimilarityStrategy
    ) -> "NamePathMatcher":
        return NamePathMatcher(
            constituents=self.constituents,
            aggregation=self.aggregation,
            combined_similarity=combined_similarity,
            include_schema_root=self._include_schema_root,
        )

    def tokens_for(self, path: SchemaPath, context: MatchContext) -> Tuple[str, ...]:
        names = path.names if self._include_schema_root else path.names[1:] or path.names
        return context.tokenizer.tokenize_path(names)
