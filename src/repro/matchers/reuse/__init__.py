"""Reuse-oriented matchers: MatchCompose, the Schema matcher and the Fragment matcher."""

from repro.matchers.reuse.compose import (
    COMPOSITION_FUNCTIONS,
    average_composition,
    composition_by_name,
    match_compose,
    max_composition,
    min_composition,
    product_composition,
)
from repro.matchers.reuse.fragment import FragmentReuseMatcher
from repro.matchers.reuse.provider import (
    ORIGIN_AUTOMATIC,
    ORIGIN_MANUAL,
    InMemoryMappingStore,
    MappingProvider,
    StoredMapping,
)
from repro.matchers.reuse.schema_reuse import SchemaReuseMatcher, schema_a, schema_m

__all__ = [
    "COMPOSITION_FUNCTIONS",
    "FragmentReuseMatcher",
    "InMemoryMappingStore",
    "MappingProvider",
    "ORIGIN_AUTOMATIC",
    "ORIGIN_MANUAL",
    "SchemaReuseMatcher",
    "StoredMapping",
    "average_composition",
    "composition_by_name",
    "match_compose",
    "max_composition",
    "min_composition",
    "product_composition",
    "schema_a",
    "schema_m",
]
