"""Stored mappings and the provider interface used by reuse-oriented matchers.

Reuse matchers (Section 5) operate on *previously obtained* match results.
Those results may live in the SQLite repository or simply in memory; either
way the reuse matchers only need:

* :class:`StoredMapping` -- a schema-pair-labelled bag of
  ``(source path, target path, similarity)`` rows, i.e. the relational
  representation of Figure 3c,
* :class:`MappingProvider` -- anything that can enumerate stored mappings,
  optionally filtered by origin (``"manual"`` vs ``"automatic"``).

:class:`InMemoryMappingStore` is the trivial provider used in tests, examples
and the evaluation harness; :class:`~repro.repository.repository.Repository`
implements the same interface on top of SQLite.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.model.mapping import MatchResult

#: One stored correspondence row: source path string, target path string, similarity.
MappingRow = Tuple[str, str, float]

#: Origin labels for stored mappings.
ORIGIN_MANUAL = "manual"
ORIGIN_AUTOMATIC = "automatic"


@dataclasses.dataclass(frozen=True)
class StoredMapping:
    """A persisted mapping between two named schemas (relational form, Figure 3c)."""

    source_schema: str
    target_schema: str
    rows: Tuple[MappingRow, ...]
    origin: str = ORIGIN_AUTOMATIC
    name: str = ""

    @classmethod
    def from_match_result(
        cls, result: MatchResult, origin: str = ORIGIN_AUTOMATIC, name: str = ""
    ) -> "StoredMapping":
        """Build a stored mapping from a live :class:`MatchResult`."""
        return cls(
            source_schema=result.source_schema.name,
            target_schema=result.target_schema.name,
            rows=tuple(result.as_tuples()),
            origin=origin,
            name=name or result.name,
        )

    @property
    def schema_pair(self) -> Tuple[str, str]:
        """The ``(source, target)`` schema-name pair."""
        return (self.source_schema, self.target_schema)

    def involves(self, schema_name: str) -> bool:
        """True if one side of the mapping is ``schema_name``."""
        return schema_name in (self.source_schema, self.target_schema)

    def other_schema(self, schema_name: str) -> Optional[str]:
        """The opposite side of ``schema_name``, or ``None`` if not involved."""
        if schema_name == self.source_schema:
            return self.target_schema
        if schema_name == self.target_schema:
            return self.source_schema
        return None

    def inverted(self) -> "StoredMapping":
        """The mapping read in the opposite direction."""
        return StoredMapping(
            source_schema=self.target_schema,
            target_schema=self.source_schema,
            rows=tuple((target, source, sim) for source, target, sim in self.rows),
            origin=self.origin,
            name=self.name,
        )

    def oriented(self, source_name: str, target_name: str) -> Optional["StoredMapping"]:
        """This mapping oriented as ``source_name -> target_name``, or ``None``."""
        if (self.source_schema, self.target_schema) == (source_name, target_name):
            return self
        if (self.target_schema, self.source_schema) == (source_name, target_name):
            return self.inverted()
        return None

    def __len__(self) -> int:
        return len(self.rows)


@runtime_checkable
class MappingProvider(Protocol):
    """Anything that can enumerate stored mappings for reuse."""

    def stored_mappings(self, origin: Optional[str] = None) -> Sequence[StoredMapping]:
        """All stored mappings, optionally restricted to one origin."""
        ...  # pragma: no cover - protocol definition


class InMemoryMappingStore:
    """A trivially simple :class:`MappingProvider` backed by a Python list."""

    def __init__(self, mappings: Optional[Iterable[StoredMapping]] = None):
        self._mappings: List[StoredMapping] = list(mappings or ())

    def add(self, mapping: StoredMapping | MatchResult, origin: str = ORIGIN_AUTOMATIC) -> None:
        """Store a mapping (converted from a :class:`MatchResult` if necessary)."""
        if isinstance(mapping, MatchResult):
            mapping = StoredMapping.from_match_result(mapping, origin=origin)
        self._mappings.append(mapping)

    def stored_mappings(self, origin: Optional[str] = None) -> Sequence[StoredMapping]:
        if origin is None:
            return tuple(self._mappings)
        return tuple(m for m in self._mappings if m.origin == origin)

    def __len__(self) -> int:
        return len(self._mappings)
