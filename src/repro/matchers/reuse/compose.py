"""The MatchCompose operation (Section 5.1).

Given two match results ``match1: S1 <-> S2`` and ``match2: S2 <-> S3`` that
share schema S2, MatchCompose derives a new match result ``S1 <-> S3``.  The
operation assumes transitivity of the similarity relation; the similarity of a
composed pair is derived from the two constituent similarities with a
configurable composition function.  The paper argues against multiplying the
values (similarities degrade too quickly) and prefers Average, which is the
default here; Min, Max and Product are provided for the ablation bench.

Operationally MatchCompose is the natural join of the relational
representations of the two mappings on the shared (middle) schema's paths
(Figure 3c), so the implementation works on :class:`StoredMapping` rows keyed
by dotted path strings and is independent of live schema objects.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.exceptions import MatcherError
from repro.matchers.reuse.provider import MappingRow, StoredMapping

#: A composition function deriving the composed similarity from two values.
CompositionFunction = Callable[[float, float], float]


def average_composition(first: float, second: float) -> float:
    """The Average composition preferred by the paper (0.5 and 0.7 compose to 0.6)."""
    return (first + second) / 2.0


def product_composition(first: float, second: float) -> float:
    """Multiplicative composition (degrades quickly; kept for the ablation study)."""
    return first * second


def min_composition(first: float, second: float) -> float:
    """Pessimistic composition: the weaker link dominates."""
    return min(first, second)


def max_composition(first: float, second: float) -> float:
    """Optimistic composition: the stronger link dominates."""
    return max(first, second)


COMPOSITION_FUNCTIONS: Dict[str, CompositionFunction] = {
    "average": average_composition,
    "product": product_composition,
    "min": min_composition,
    "max": max_composition,
}


def composition_by_name(name: str) -> CompositionFunction:
    """Resolve a composition function from its name."""
    try:
        return COMPOSITION_FUNCTIONS[name.strip().lower()]
    except KeyError:
        raise MatcherError(
            f"unknown composition function {name!r}; expected one of "
            f"{sorted(COMPOSITION_FUNCTIONS)}"
        ) from None


def match_compose(
    match1: StoredMapping,
    match2: StoredMapping,
    composition: CompositionFunction | str = average_composition,
) -> StoredMapping:
    """Compose ``match1: S1 <-> S2`` with ``match2: S2 <-> S3`` into ``S1 <-> S3``.

    The middle schema of ``match1`` (its target) must be the source schema of
    ``match2``.  When the join produces the same ``(S1, S3)`` pair via several
    middle elements, the maximum composed similarity is kept.
    """
    if isinstance(composition, str):
        composition = composition_by_name(composition)
    if match1.target_schema != match2.source_schema:
        raise MatcherError(
            "MatchCompose requires a shared middle schema: "
            f"{match1.target_schema!r} (target of match1) != "
            f"{match2.source_schema!r} (source of match2)"
        )
    if match1.source_schema == match2.target_schema:
        raise MatcherError(
            "MatchCompose would relate a schema to itself "
            f"({match1.source_schema!r}); refusing the trivial composition"
        )

    # Index match2 rows by their middle-schema path for the join.
    by_middle: Dict[str, List[Tuple[str, float]]] = {}
    for middle, target, similarity in match2.rows:
        by_middle.setdefault(middle, []).append((target, similarity))

    composed: Dict[Tuple[str, str], float] = {}
    for source, middle, first_similarity in match1.rows:
        for target, second_similarity in by_middle.get(middle, ()):
            value = min(1.0, max(0.0, composition(first_similarity, second_similarity)))
            key = (source, target)
            if value > composed.get(key, 0.0):
                composed[key] = value

    rows: Tuple[MappingRow, ...] = tuple(
        (source, target, similarity) for (source, target), similarity in sorted(composed.items())
    )
    return StoredMapping(
        source_schema=match1.source_schema,
        target_schema=match2.target_schema,
        rows=rows,
        origin="composed",
        name=f"compose({match1.name or match1.source_schema + '<->' + match1.target_schema}, "
             f"{match2.name or match2.source_schema + '<->' + match2.target_schema})",
    )
