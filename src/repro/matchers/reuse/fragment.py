"""The Fragment reuse matcher (Section 5, mentioned alongside Schema).

The paper introduces two reuse-oriented matchers: ``Schema`` (reuse at the
level of entire schemas, described in detail) and ``Fragment`` (reuse at the
level of schema fragments, only mentioned due to lack of space).  This module
implements fragment-level reuse in the spirit of the paper:

Stored mappings from *any* schema pair are mined for correspondences between
path fragments -- the trailing portions of the recorded paths.  If a stored
correspondence relates fragments ``...Address.City <-> ...Lieferadresse.Ort``,
then any pair of current paths ending in the same fragments inherits that
similarity.  Longer matching fragments are trusted more than shorter ones: the
transferred similarity is scaled by the fraction of the current paths covered
by the matched fragment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.combination.matrix import SimilarityMatrix
from repro.exceptions import MatcherError
from repro.matchers.base import MatchContext, Matcher
from repro.matchers.reuse.provider import MappingProvider, StoredMapping
from repro.model.path import SchemaPath


def _fragments(path_string: str, max_length: int) -> List[Tuple[str, ...]]:
    """Trailing name fragments of a dotted path, shortest first, up to ``max_length``."""
    names = tuple(path_string.split("."))
    fragments = []
    for length in range(1, min(max_length, len(names)) + 1):
        fragments.append(names[-length:])
    return fragments


class FragmentReuseMatcher(Matcher):
    """Reuse of stored correspondences at the level of path fragments."""

    name = "Fragment"
    kind = "reuse"

    def __init__(
        self,
        provider: Optional[MappingProvider] = None,
        origin: Optional[str] = None,
        max_fragment_length: int = 3,
        min_fragment_length: int = 2,
    ):
        if min_fragment_length < 1 or max_fragment_length < min_fragment_length:
            raise MatcherError(
                "fragment lengths must satisfy 1 <= min_fragment_length <= max_fragment_length"
            )
        self._provider = provider
        self._origin = origin
        self._max_length = int(max_fragment_length)
        self._min_length = int(min_fragment_length)

    def _provider_for(self, context: MatchContext) -> MappingProvider:
        if self._provider is not None:
            return self._provider
        if context.repository is not None:
            return context.repository
        raise MatcherError(
            "the Fragment matcher needs a mapping provider: pass one to the "
            "constructor or set MatchContext.repository"
        )

    def _fragment_table(
        self, context: MatchContext
    ) -> Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], float]:
        """Similarity per (source fragment, target fragment) mined from stored mappings."""
        provider = self._provider_for(context)
        source_name = context.source_schema.name
        target_name = context.target_schema.name
        table: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], float] = {}
        for mapping in provider.stored_mappings(self._origin):
            # Never reuse a mapping of the very task being solved.
            if mapping.involves(source_name) and mapping.involves(target_name):
                continue
            for source_str, target_str, similarity in mapping.rows:
                for source_fragment in _fragments(source_str, self._max_length):
                    if len(source_fragment) < self._min_length:
                        continue
                    for target_fragment in _fragments(target_str, self._max_length):
                        if len(target_fragment) != len(source_fragment):
                            continue
                        key = (source_fragment, target_fragment)
                        symmetric = (target_fragment, source_fragment)
                        value = max(table.get(key, 0.0), similarity)
                        table[key] = value
                        table[symmetric] = max(table.get(symmetric, 0.0), value)
        return table

    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        table = self._fragment_table(context)
        matrix = SimilarityMatrix(source_paths, target_paths)
        if not table:
            return matrix
        for source in source_paths:
            source_fragments = _fragments(source.dotted(), self._max_length)
            for target in target_paths:
                target_fragments = _fragments(target.dotted(), self._max_length)
                best = 0.0
                for source_fragment in source_fragments:
                    if len(source_fragment) < self._min_length:
                        continue
                    for target_fragment in target_fragments:
                        if len(target_fragment) != len(source_fragment):
                            continue
                        stored = table.get((source_fragment, target_fragment))
                        if stored is None:
                            continue
                        coverage = (2 * len(source_fragment)) / (len(source) + len(target))
                        best = max(best, stored * min(1.0, coverage))
                matrix.set(source, target, min(1.0, best))
        return matrix
