"""The Schema reuse matcher (Section 5.2, Figure 5).

Given two schemas S1 and S2 to match, the Schema matcher searches the
repository for every schema S for which a pair of match results relating S
with both S1 and S2 exists (in any orientation).  For each such intermediary,
MatchCompose produces an S1 <-> S2 mapping; the composed mappings are then
aggregated (Average by default) into one similarity matrix, which becomes this
matcher's layer in the similarity cube.

Two named variants mirror the paper's evaluation (Section 7.3):

* ``SchemaM`` reuses only manually confirmed mappings (origin ``"manual"``),
* ``SchemaA`` reuses only automatically derived mappings (origin ``"automatic"``).

A direct mapping between S1 and S2 stored in the repository is never reused:
the matcher is meant to exploit *other* match tasks, and during evaluation
reusing the task's own gold standard would be circular.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.combination.aggregation import AVERAGE, AggregationStrategy
from repro.combination.matrix import SimilarityMatrix
from repro.exceptions import MatcherError, UnknownElementError
from repro.matchers.base import MatchContext, Matcher
from repro.matchers.hybrid.set_similarity import _aggregate_layers
from repro.matchers.reuse.compose import CompositionFunction, average_composition, match_compose
from repro.matchers.reuse.provider import MappingProvider, StoredMapping
from repro.model.path import SchemaPath


class SchemaReuseMatcher(Matcher):
    """Reuse of complete schema-level mappings via MatchCompose."""

    name = "Schema"
    kind = "reuse"

    def __init__(
        self,
        provider: Optional[MappingProvider] = None,
        origin: Optional[str] = None,
        aggregation: AggregationStrategy = AVERAGE,
        composition: CompositionFunction = average_composition,
        name: Optional[str] = None,
    ):
        self._provider = provider
        self._origin = origin
        self._aggregation = aggregation
        self._composition = composition
        if name:
            self.name = name

    # -- configuration ------------------------------------------------------------

    @property
    def origin(self) -> Optional[str]:
        """The origin filter applied to stored mappings (``None`` = any origin)."""
        return self._origin

    def _provider_for(self, context: MatchContext) -> MappingProvider:
        if self._provider is not None:
            return self._provider
        if context.repository is not None:
            return context.repository
        raise MatcherError(
            f"the {self.name} matcher needs a mapping provider: pass one to the "
            "constructor or set MatchContext.repository"
        )

    # -- reuse machinery ----------------------------------------------------------------

    def composed_mappings(self, context: MatchContext) -> List[StoredMapping]:
        """All S1 <-> S2 mappings obtainable by composing stored mappings via one intermediary."""
        provider = self._provider_for(context)
        source_name = context.source_schema.name
        target_name = context.target_schema.name
        stored = [
            m
            for m in provider.stored_mappings(self._origin)
            if not (m.involves(source_name) and m.involves(target_name))
        ]

        to_source: Dict[str, List[StoredMapping]] = {}
        to_target: Dict[str, List[StoredMapping]] = {}
        for mapping in stored:
            intermediary = mapping.other_schema(source_name)
            if intermediary is not None and intermediary != target_name:
                oriented = mapping.oriented(source_name, intermediary)
                if oriented is not None:
                    to_source.setdefault(intermediary, []).append(oriented)
            intermediary = mapping.other_schema(target_name)
            if intermediary is not None and intermediary != source_name:
                oriented = mapping.oriented(intermediary, target_name)
                if oriented is not None:
                    to_target.setdefault(intermediary, []).append(oriented)

        composed: List[StoredMapping] = []
        for intermediary in sorted(set(to_source) & set(to_target)):
            for first in to_source[intermediary]:
                for second in to_target[intermediary]:
                    composed.append(match_compose(first, second, self._composition))
        return composed

    # -- matcher interface ------------------------------------------------------------------

    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        composed = self.composed_mappings(context)
        matrix = SimilarityMatrix(source_paths, target_paths)
        if not composed:
            return matrix

        source_index = {path.dotted(): path for path in source_paths}
        target_index = {path.dotted(): path for path in target_paths}

        layers = np.zeros((len(composed), len(source_paths), len(target_paths)), dtype=float)
        row_of = {path: i for i, path in enumerate(source_paths)}
        column_of = {path: j for j, path in enumerate(target_paths)}
        for k, mapping in enumerate(composed):
            for source_str, target_str, similarity in mapping.rows:
                source = source_index.get(source_str)
                target = target_index.get(target_str)
                if source is None or target is None:
                    # The stored mapping may reference paths outside the
                    # requested subsets (or from an older schema version).
                    continue
                layers[k, row_of[source], column_of[target]] = similarity

        aggregated = _aggregate_layers(layers, self._aggregation)
        return SimilarityMatrix(source_paths, target_paths, np.clip(aggregated, 0.0, 1.0))


def schema_m(provider: Optional[MappingProvider] = None) -> SchemaReuseMatcher:
    """The SchemaM variant: reuse of manually confirmed mappings."""
    return SchemaReuseMatcher(provider=provider, origin="manual", name="SchemaM")


def schema_a(provider: Optional[MappingProvider] = None) -> SchemaReuseMatcher:
    """The SchemaA variant: reuse of automatically derived mappings."""
    return SchemaReuseMatcher(provider=provider, origin="automatic", name="SchemaA")
