"""Process-wide kernel memo pools: cross-schema string-matcher result reuse.

Purchase-order-style corpora repeat the same field names constantly --
``Address``, ``City``, ``Street``, ``qty`` show up in almost every schema of a
domain.  The per-operation profile caches (PR 1) already collapse repeated
names *within* one schema pair, but every new pair re-evaluates the same
string kernels from scratch: ``EditDistance("street", "straat")`` is computed
again for every schema pair whose sides contain those two names.

A :class:`KernelMemoPool` closes that gap.  It memoises *string-matcher*
results process-wide, keyed by ``(kernel key, name pair)`` where the kernel
key identifies the matcher and its configuration (e.g.
``("EditDistance", 2, False)``) and the name pair is interned via
:func:`sys.intern` so repeated names share storage.  The pool is shared by all
sessions, operations and service shards of one process, so an all-pairs
campaign over ``n`` schemas evaluates each distinct (kernel, name pair) once
instead of once per schema pair.

Properties:

* **content-addressed**: entries depend only on the kernel key and the two
  strings, so a stale entry is impossible -- the same key always maps to the
  same value, which is also why pool reuse keeps results byte-identical to
  uncached execution;
* **bounded**: LRU with an entry cap (see :attr:`KernelMemoPool.max_entries`);
  each entry costs roughly 150-250 bytes (key tuple + interned strings +
  float), so the default cap of 1M entries bounds the pool at ~200 MB worst
  case and far less in practice because names repeat;
* **lock-guarded**: one lock per pool, taken once per *block* (not per pair),
  so batch lookups amortise the synchronisation;
* **instrumented**: ``hits`` / ``misses`` / ``evictions`` counters surfaced
  alongside the session cube counters through ``coma stats`` and the service
  ``/stats`` endpoint.

Matchers opt in by returning a hashable configuration key from
:meth:`~repro.matchers.base.StringMatcher.memo_key`; matchers whose kernel is
already a cheap vectorized array operation (the n-gram matmul) or a plain dict
lookup (Synonym) stay opted out, because a per-pair dict probe would cost as
much as the kernel itself.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: A callable evaluating the kernel for a list of (row, column) string pairs,
#: returning one value per pair.  Called only for pairs absent from the pool.
PairKernel = Callable[[Sequence[Tuple[str, str]]], np.ndarray]


class KernelMemoPool:
    """A bounded, lock-guarded, process-wide memo of string-kernel results.

    Parameters
    ----------
    max_entries:
        The LRU entry cap; ``None`` disables eviction (unbounded pool).

    Examples
    --------
    >>> pool = KernelMemoPool(max_entries=100)
    >>> kernel_calls = []
    >>> def kernel(pairs):
    ...     kernel_calls.extend(pairs)
    ...     return np.array([float(len(a) == len(b)) for a, b in pairs])
    >>> pool.block(("demo",), ["ab", "cd"], ["xy"], kernel)
    array([[1.],
           [1.]])
    >>> pool.block(("demo",), ["ab"], ["xy"], kernel)  # served from the pool
    array([[1.]])
    >>> len(kernel_calls)
    2
    >>> pool.info()["hits"], pool.info()["misses"]
    (1, 2)
    """

    #: Default entry cap: ~200 MB worst case, far less on real corpora.
    DEFAULT_MAX_ENTRIES = 1_000_000

    def __init__(self, max_entries: Optional[int] = DEFAULT_MAX_ENTRIES):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._values: "OrderedDict[tuple, float]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_entries(self) -> Optional[int]:
        """The LRU entry cap (``None`` = unbounded)."""
        return self._max_entries

    @staticmethod
    def _entry_key(
        kernel_key: tuple, row: str, column: str, symmetric: bool
    ) -> tuple:
        if symmetric and column < row:
            row, column = column, row
        return (kernel_key, sys.intern(row), sys.intern(column))

    def block(
        self,
        kernel_key: tuple,
        rows: Sequence[str],
        columns: Sequence[str],
        kernel: PairKernel,
        symmetric: bool = True,
    ) -> np.ndarray:
        """The full ``rows x columns`` kernel matrix, memoised per pair.

        Known pairs are served from the pool; the remaining *distinct* pairs
        are evaluated through ``kernel`` in one call (outside the lock) and
        stored back.  ``symmetric=True`` (the default -- every current string
        kernel is symmetric) canonicalises the pair order so
        ``(a, b)`` and ``(b, a)`` share one entry.

        Parameters
        ----------
        kernel_key:
            Hashable matcher identity + configuration, e.g.
            ``("EditDistance", False)``.
        rows / columns:
            The two string axes (callers pass unique names, but duplicates
            are handled correctly).
        kernel:
            Evaluates the missing pairs; called at most once per block.
        symmetric:
            Whether ``kernel(a, b) == kernel(b, a)``.

        Returns
        -------
        numpy.ndarray
            The dense ``len(rows) x len(columns)`` float matrix.
        """
        shape = (len(rows), len(columns))
        values = np.empty(shape, dtype=float)
        if 0 in shape:
            return values
        # Key construction (tuple building + interning) is the expensive part
        # of the lookup sweep and needs no synchronisation -- keep it outside
        # the lock so concurrent sessions' blocks do not serialise on it.
        keys = [
            [self._entry_key(kernel_key, row, column, symmetric) for column in columns]
            for row in rows
        ]
        # Phase 1 (locked): gather known entries, collect distinct missing keys.
        missing: Dict[tuple, List[Tuple[int, int]]] = {}
        missing_pairs: List[Tuple[str, str]] = []
        with self._lock:
            pool = self._values
            for i, row_keys in enumerate(keys):
                for j, key in enumerate(row_keys):
                    value = pool.get(key)
                    if value is not None:
                        pool.move_to_end(key)
                        values[i, j] = value
                    else:
                        cells = missing.get(key)
                        if cells is None:
                            missing[key] = [(i, j)]
                            missing_pairs.append((rows[i], columns[j]))
                        else:
                            cells.append((i, j))
            self._hits += shape[0] * shape[1] - sum(len(c) for c in missing.values())
            self._misses += len(missing)
        if not missing:
            return values
        # Phase 2 (unlocked): evaluate the distinct missing pairs in one batch.
        computed = np.asarray(kernel(missing_pairs), dtype=float)
        if computed.shape != (len(missing_pairs),):
            raise ValueError(
                f"kernel returned shape {computed.shape}, "
                f"expected ({len(missing_pairs)},)"
            )
        # Phase 3 (locked): scatter and publish.  A concurrent block computing
        # the same pair published an identical value (the kernels are pure
        # functions of the key), so last-write-wins is safe.
        for value, cells in zip(computed, missing.values()):
            for i, j in cells:
                values[i, j] = value
        with self._lock:
            pool = self._values
            for key, value in zip(missing.keys(), computed):
                pool[key] = float(value)
                pool.move_to_end(key)
            if self._max_entries is not None:
                while len(pool) > self._max_entries:
                    pool.popitem(last=False)
                    self._evictions += 1
        return values

    def info(self) -> Dict[str, int]:
        """Occupancy and lifetime counters.

        Returns
        -------
        dict
            ``entries`` (current occupancy), ``max_entries`` (the cap, or 0
            for unbounded) and the lifetime ``hits`` / ``misses`` /
            ``evictions``.
        """
        with self._lock:
            return {
                "entries": len(self._values),
                "max_entries": self._max_entries or 0,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def clear(self, reset_counters: bool = False) -> None:
        """Drop all entries (and optionally reset the lifetime counters)."""
        with self._lock:
            self._values.clear()
            if reset_counters:
                self._hits = self._misses = self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.info()
        return (
            f"KernelMemoPool(entries={info['entries']}, hits={info['hits']}, "
            f"misses={info['misses']})"
        )


#: The pool shared by every matcher of the process (sessions, service shards,
#: the evaluation harness).  Entries are content-addressed, so sharing across
#: unrelated workloads is always safe.
DEFAULT_MEMO_POOL = KernelMemoPool()

_active_pool: Optional[KernelMemoPool] = DEFAULT_MEMO_POOL


def active_pool() -> Optional[KernelMemoPool]:
    """The pool string matchers currently memoise through (``None`` = disabled)."""
    return _active_pool


def set_active_pool(pool: Optional[KernelMemoPool]) -> Optional[KernelMemoPool]:
    """Swap the process-wide active pool; returns the previous one.

    Pass ``None`` to disable kernel memoisation entirely (the equivalence
    tests compare memoised and unmemoised execution through this switch).
    """
    global _active_pool
    previous = _active_pool
    _active_pool = pool
    return previous
