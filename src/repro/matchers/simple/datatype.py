"""The DataType matcher (Section 4.1).

"This matcher uses a synonym table specifying the degree of compatibility
between a set of predefined generic data types, to which data types of schema
elements are mapped in order to determine their similarity."

The generic type system and the compatibility table live in
:mod:`repro.model.datatypes`; this matcher simply looks up the compatibility
of the generic types of the two paths' leaf elements.  The table can be
overridden per match operation via the :class:`~repro.matchers.base.MatchContext`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.combination.matrix import SimilarityMatrix
from repro.matchers.base import MatchContext, PairwiseMatcher
from repro.model.datatypes import TypeCompatibilityTable
from repro.model.path import SchemaPath


class DataTypeMatcher(PairwiseMatcher):
    """Similarity from the compatibility of the elements' generic data types."""

    name = "DataType"
    kind = "simple"

    def __init__(self, table: Optional[TypeCompatibilityTable] = None):
        self._table = table

    def _table_for(self, context: MatchContext) -> TypeCompatibilityTable:
        return self._table if self._table is not None else context.type_compatibility

    def pair_similarity(
        self, source: SchemaPath, target: SchemaPath, context: MatchContext
    ) -> float:
        table = self._table_for(context)
        return table.compatibility(source.generic_type, target.generic_type)

    def compute_batch(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Batch variant: one table lookup per pair of *distinct* generic types.

        Schemas use a handful of generic types, so the kernel scattered to the
        full matrix is typically just a few dozen cells.
        """
        table = self._table_for(context)
        source_profile = context.profiles(source_paths)
        target_profile = context.profiles(target_paths)
        values = np.array(
            [
                [table.compatibility(a, b) for b in target_profile.unique_types]
                for a in source_profile.unique_types
            ],
            dtype=float,
        )
        return SimilarityMatrix.from_unique(
            source_paths,
            target_paths,
            values,
            source_profile.type_inverse,
            target_profile.type_inverse,
        )

    def cache_key(self, path: SchemaPath, context: MatchContext) -> object:
        return path.generic_type
