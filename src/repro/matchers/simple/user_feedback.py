"""The UserFeedback matcher and the feedback store it reads from (Section 3).

"COMA supports user interaction by a so-called UserFeedback matcher to capture
match and mismatch information provided by the user including corrected match
results from the previous match iteration.  This matcher ensures that approved
matches (and mismatches) are assigned the maximal (and minimal) similarity and
that these values remain unaffected by the other matchers during the matcher
execution step."

Two pieces implement this:

* :class:`UserFeedbackStore` -- records accepted matches and rejected
  (mis-)matches, keyed by dotted path pairs so feedback survives re-imports of
  the same schemas;
* :class:`UserFeedbackMatcher` -- a matcher layer producing 1.0 for accepted
  and 0.0 for rejected pairs (0.5 elsewhere, i.e. "no opinion"), plus the
  :meth:`UserFeedbackMatcher.apply_overrides` hook the processor uses after
  aggregation so user decisions are never overridden by other matchers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.combination.matrix import SimilarityMatrix
from repro.matchers.base import MatchContext, Matcher
from repro.model.path import SchemaPath

#: A feedback key: (source dotted path, target dotted path).
FeedbackKey = Tuple[str, str]


class UserFeedbackStore:
    """Accepted and rejected correspondences provided by the user."""

    def __init__(self) -> None:
        self._accepted: Set[FeedbackKey] = set()
        self._rejected: Set[FeedbackKey] = set()

    @staticmethod
    def _key(source: SchemaPath | str, target: SchemaPath | str) -> FeedbackKey:
        source_key = source.dotted() if isinstance(source, SchemaPath) else str(source)
        target_key = target.dotted() if isinstance(target, SchemaPath) else str(target)
        return (source_key, target_key)

    # -- recording ---------------------------------------------------------------

    def accept(self, source: SchemaPath | str, target: SchemaPath | str) -> None:
        """Record that the user confirmed the correspondence ``source <-> target``."""
        key = self._key(source, target)
        self._rejected.discard(key)
        self._accepted.add(key)

    def reject(self, source: SchemaPath | str, target: SchemaPath | str) -> None:
        """Record that the user rejected the correspondence ``source <-> target``."""
        key = self._key(source, target)
        self._accepted.discard(key)
        self._rejected.add(key)

    def clear(self) -> None:
        """Forget all recorded feedback."""
        self._accepted.clear()
        self._rejected.clear()

    # -- queries -----------------------------------------------------------------------

    def is_accepted(self, source: SchemaPath | str, target: SchemaPath | str) -> bool:
        """True if the pair was explicitly confirmed."""
        return self._key(source, target) in self._accepted

    def is_rejected(self, source: SchemaPath | str, target: SchemaPath | str) -> bool:
        """True if the pair was explicitly rejected."""
        return self._key(source, target) in self._rejected

    def decision(self, source: SchemaPath | str, target: SchemaPath | str) -> Optional[bool]:
        """``True`` for accepted, ``False`` for rejected, ``None`` if no feedback exists."""
        key = self._key(source, target)
        if key in self._accepted:
            return True
        if key in self._rejected:
            return False
        return None

    @property
    def accepted_pairs(self) -> Tuple[FeedbackKey, ...]:
        """All accepted pairs, sorted."""
        return tuple(sorted(self._accepted))

    @property
    def rejected_pairs(self) -> Tuple[FeedbackKey, ...]:
        """All rejected pairs, sorted."""
        return tuple(sorted(self._rejected))

    def __len__(self) -> int:
        return len(self._accepted) + len(self._rejected)

    def __bool__(self) -> bool:
        return bool(self._accepted or self._rejected)


class UserFeedbackMatcher(Matcher):
    """Turns user feedback into a matcher layer and post-aggregation overrides."""

    name = "UserFeedback"
    kind = "simple"

    #: Similarity assigned to pairs without any user feedback.  The neutral
    #: value of 0.5 keeps the layer from dragging other matchers' scores up or
    #: down when aggregated with Average.
    neutral_similarity = 0.5

    def __init__(self, store: Optional[UserFeedbackStore] = None):
        self._store = store

    def _store_for(self, context: MatchContext) -> Optional[UserFeedbackStore]:
        return self._store if self._store is not None else context.feedback

    def compute(
        self,
        source_paths,
        target_paths,
        context: MatchContext,
    ) -> SimilarityMatrix:
        matrix = SimilarityMatrix.filled(source_paths, target_paths, self.neutral_similarity)
        store = self._store_for(context)
        if store is None or not store:
            return matrix
        for source in source_paths:
            for target in target_paths:
                decision = store.decision(source, target)
                if decision is True:
                    matrix.set(source, target, 1.0)
                elif decision is False:
                    matrix.set(source, target, 0.0)
        return matrix

    def compute_batch(
        self,
        source_paths,
        target_paths,
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Batch variant: touch only the recorded pairs, not the full cross-product.

        Feedback stores hold a handful of decisions, so walking the store and
        resolving its dotted keys against the path axes is O(feedback) instead
        of O(m x n).
        """
        matrix = SimilarityMatrix.filled(source_paths, target_paths, self.neutral_similarity)
        store = self._store_for(context)
        if store is None or not store:
            return matrix
        sources_by_dotted: Dict[str, List[SchemaPath]] = {}
        for path in source_paths:
            sources_by_dotted.setdefault(path.dotted(), []).append(path)
        targets_by_dotted: Dict[str, List[SchemaPath]] = {}
        for path in target_paths:
            targets_by_dotted.setdefault(path.dotted(), []).append(path)
        for pairs, value in ((store.accepted_pairs, 1.0), (store.rejected_pairs, 0.0)):
            for source_key, target_key in pairs:
                for source in sources_by_dotted.get(source_key, ()):
                    for target in targets_by_dotted.get(target_key, ()):
                        matrix.set(source, target, value)
        return matrix

    def apply_overrides(self, matrix: SimilarityMatrix, context: MatchContext) -> SimilarityMatrix:
        """Force accepted pairs to 1.0 and rejected pairs to 0.0 in ``matrix``.

        The processor calls this after aggregation so user feedback "remains
        unaffected by the other matchers".
        """
        store = self._store_for(context)
        if store is None or not store:
            return matrix
        adjusted = matrix.copy()
        for source in matrix.source_paths:
            for target in matrix.target_paths:
                decision = store.decision(source, target)
                if decision is True:
                    adjusted.set(source, target, 1.0)
                elif decision is False:
                    adjusted.set(source, target, 0.0)
        return adjusted
