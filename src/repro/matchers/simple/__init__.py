"""Simple schema-level matchers: lifted string matchers, Synonym, DataType, UserFeedback."""

from typing import Optional

from repro.auxiliary.synonyms import SynonymDictionary
from repro.matchers.base import MatchContext, NameStringMatcher, PairwiseMatcher
from repro.matchers.simple.datatype import DataTypeMatcher
from repro.matchers.simple.user_feedback import UserFeedbackMatcher, UserFeedbackStore
from repro.matchers.string import (
    AffixMatcher,
    DigramMatcher,
    EditDistanceMatcher,
    NGramMatcher,
    SoundexMatcher,
    SynonymStringMatcher,
    TrigramMatcher,
)
from repro.model.path import SchemaPath


class SynonymMatcher(PairwiseMatcher):
    """The Synonym matcher lifted to schema level (compares leaf element names).

    Unlike :class:`~repro.matchers.base.NameStringMatcher` wrapping a bound
    :class:`SynonymStringMatcher`, this matcher takes its dictionary from the
    match context by default, so the same instance works across match tasks
    with task-specific dictionaries.
    """

    name = "Synonym"
    kind = "simple"

    def __init__(self, dictionary: Optional[SynonymDictionary] = None):
        self._dictionary = dictionary

    def pair_similarity(
        self, source: SchemaPath, target: SchemaPath, context: MatchContext
    ) -> float:
        dictionary = self._dictionary if self._dictionary is not None else context.synonyms
        return dictionary.similarity(source.name, target.name)

    def cache_key(self, path: SchemaPath, context: MatchContext) -> object:
        return path.name


def affix_matcher() -> NameStringMatcher:
    """The Affix simple matcher over element names."""
    return NameStringMatcher(AffixMatcher())


def digram_matcher() -> NameStringMatcher:
    """The Digram (2-gram) simple matcher over element names."""
    return NameStringMatcher(DigramMatcher())


def trigram_matcher() -> NameStringMatcher:
    """The Trigram (3-gram) simple matcher over element names."""
    return NameStringMatcher(TrigramMatcher())


def edit_distance_matcher() -> NameStringMatcher:
    """The EditDistance (Levenshtein) simple matcher over element names."""
    return NameStringMatcher(EditDistanceMatcher())


def soundex_matcher() -> NameStringMatcher:
    """The Soundex simple matcher over element names."""
    return NameStringMatcher(SoundexMatcher())


__all__ = [
    "AffixMatcher",
    "DataTypeMatcher",
    "DigramMatcher",
    "EditDistanceMatcher",
    "NGramMatcher",
    "SoundexMatcher",
    "SynonymMatcher",
    "SynonymStringMatcher",
    "TrigramMatcher",
    "UserFeedbackMatcher",
    "UserFeedbackStore",
    "affix_matcher",
    "digram_matcher",
    "edit_distance_matcher",
    "soundex_matcher",
    "trigram_matcher",
]
