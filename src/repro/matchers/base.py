"""Matcher base classes and the match context shared by all matchers.

Two matcher granularities exist in COMA:

* :class:`StringMatcher` -- computes a similarity between two *strings*
  (names or name tokens).  The simple approximate string matchers (Affix,
  n-gram, EditDistance, Soundex) and the Synonym matcher are string matchers.
* :class:`Matcher` -- computes a full
  :class:`~repro.combination.matrix.SimilarityMatrix` between the path sets of
  two schemas.  Simple matchers are lifted to this level by
  :class:`NameStringMatcher`; hybrid and reuse-oriented matchers implement it
  directly.

The :class:`MatchContext` carries everything a matcher may need beyond the two
schemas: tokenizer, synonym dictionary, data-type compatibility table, user
feedback, and the repository handle used by reuse-oriented matchers.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.auxiliary.synonyms import SynonymDictionary, default_purchase_order_synonyms
from repro.combination.matrix import SimilarityMatrix
from repro.linguistic.tokenizer import NameTokenizer
from repro.model.datatypes import DEFAULT_TYPE_COMPATIBILITY, TypeCompatibilityTable
from repro.model.path import SchemaPath
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.feedback import UserFeedbackStore
    from repro.repository.repository import Repository


@dataclasses.dataclass
class MatchContext:
    """Everything matchers need besides the two path sets.

    The context is created once per match operation by the processor and
    passed unchanged to every matcher, so matchers stay stateless and reusable
    across match tasks.
    """

    source_schema: Schema
    target_schema: Schema
    tokenizer: NameTokenizer = dataclasses.field(default_factory=NameTokenizer)
    synonyms: SynonymDictionary = dataclasses.field(
        default_factory=default_purchase_order_synonyms
    )
    type_compatibility: TypeCompatibilityTable = DEFAULT_TYPE_COMPATIBILITY
    feedback: Optional["UserFeedbackStore"] = None
    repository: Optional["Repository"] = None

    def swapped(self) -> "MatchContext":
        """The same context with source and target schemas exchanged."""
        return dataclasses.replace(
            self, source_schema=self.target_schema, target_schema=self.source_schema
        )


class StringMatcher(abc.ABC):
    """A matcher operating on two strings, returning a similarity in ``[0, 1]``."""

    name: str = "string-matcher"

    @abc.abstractmethod
    def similarity(self, a: str, b: str) -> float:
        """The similarity of two strings."""

    def __call__(self, a: str, b: str) -> float:
        return self.similarity(a, b)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Matcher(abc.ABC):
    """A matcher producing a similarity matrix over two path sets."""

    name: str = "matcher"

    #: Broad classification used by reports (Table 3): simple / hybrid / reuse.
    kind: str = "simple"

    @abc.abstractmethod
    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Compute the similarity of every source path against every target path."""

    def match_schemas(self, context: MatchContext) -> SimilarityMatrix:
        """Convenience: compute over all paths of the context's schemas."""
        return self.compute(
            context.source_schema.paths(), context.target_schema.paths(), context
        )

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class PairwiseMatcher(Matcher):
    """A matcher defined by a per-pair similarity function.

    Subclasses implement :meth:`pair_similarity`; the matrix is filled cell by
    cell.  A per-call memo keyed by a subclass-provided cache key avoids
    recomputing identical comparisons (e.g. equal leaf names appearing under
    several parents).
    """

    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        matrix = SimilarityMatrix(source_paths, target_paths)
        cache: Dict[Tuple[object, object], float] = {}
        for source in source_paths:
            source_key = self.cache_key(source, context)
            for target in target_paths:
                target_key = self.cache_key(target, context)
                key = (source_key, target_key)
                if key in cache:
                    value = cache[key]
                else:
                    value = self.pair_similarity(source, target, context)
                    value = min(1.0, max(0.0, float(value)))
                    cache[key] = value
                matrix.set(source, target, value)
        return matrix

    @abc.abstractmethod
    def pair_similarity(
        self, source: SchemaPath, target: SchemaPath, context: MatchContext
    ) -> float:
        """The similarity of one source path against one target path."""

    def cache_key(self, path: SchemaPath, context: MatchContext) -> object:
        """A hashable key identifying equivalent paths for this matcher.

        The default key is the path itself (no sharing of results).  Matchers
        that only look at the leaf name may return ``path.name`` to share
        results between identically named elements.
        """
        return path


class NameStringMatcher(PairwiseMatcher):
    """Lifts a :class:`StringMatcher` to a schema matcher over element names.

    This is how the simple matchers of Section 4.1 are applied on their own:
    the string matcher compares the (raw, untokenized) leaf names of the two
    paths.
    """

    kind = "simple"

    def __init__(self, string_matcher: StringMatcher, name: Optional[str] = None):
        self._string_matcher = string_matcher
        self.name = name or string_matcher.name

    @property
    def string_matcher(self) -> StringMatcher:
        """The wrapped string matcher."""
        return self._string_matcher

    def pair_similarity(
        self, source: SchemaPath, target: SchemaPath, context: MatchContext
    ) -> float:
        return self._string_matcher.similarity(source.name, target.name)

    def cache_key(self, path: SchemaPath, context: MatchContext) -> object:
        return path.name
