"""Matcher base classes and the match context shared by all matchers.

Two matcher granularities exist in COMA:

* :class:`StringMatcher` -- computes a similarity between two *strings*
  (names or name tokens).  The simple approximate string matchers (Affix,
  n-gram, EditDistance, Soundex) and the Synonym matcher are string matchers.
* :class:`Matcher` -- computes a full
  :class:`~repro.combination.matrix.SimilarityMatrix` between the path sets of
  two schemas.  Simple matchers are lifted to this level by
  :class:`NameStringMatcher`; hybrid and reuse-oriented matchers implement it
  directly.

The :class:`MatchContext` carries everything a matcher may need beyond the two
schemas: tokenizer, synonym dictionary, data-type compatibility table, user
feedback, and the repository handle used by reuse-oriented matchers.  It also
owns the per-operation :class:`~repro.engine.profiles.PathSetProfile` cache
that the batch execution path (:mod:`repro.engine`) uses to share derived
per-path structure (lowercased names, token lists, n-gram sets, soundex codes,
generic types) across all matchers of one operation.

Every matcher exposes two entry points: :meth:`Matcher.compute` (the pairwise
reference implementation, filled cell by cell) and :meth:`Matcher.compute_batch`
(the vectorized path used by :class:`~repro.engine.engine.MatchEngine`, which
evaluates unique cache keys only and scatters results with numpy fancy
indexing).  The default ``compute_batch`` falls back to ``compute``, so the
two are equivalent by construction unless a matcher provides a faster batch
implementation.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.auxiliary.synonyms import SynonymDictionary, default_purchase_order_synonyms
from repro.combination.matrix import SimilarityMatrix
from repro.linguistic.tokenizer import NameTokenizer
from repro.model.datatypes import DEFAULT_TYPE_COMPATIBILITY, TypeCompatibilityTable
from repro.model.path import SchemaPath
from repro.model.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.engine.profiles import PathSetProfile
    from repro.matchers.simple.user_feedback import UserFeedbackStore
    from repro.repository.repository import Repository


@dataclasses.dataclass
class MatchContext:
    """Everything matchers need besides the two path sets.

    The context is created once per match operation by the processor and
    passed unchanged to every matcher, so matchers stay stateless and reusable
    across match tasks.
    """

    source_schema: Schema
    target_schema: Schema
    tokenizer: NameTokenizer = dataclasses.field(default_factory=NameTokenizer)
    synonyms: SynonymDictionary = dataclasses.field(
        default_factory=default_purchase_order_synonyms
    )
    #: A per-context copy of the default table, so customising one operation's
    #: compatibilities (``context.type_compatibility.set(...)``) cannot leak
    #: into other, unrelated match operations.
    type_compatibility: TypeCompatibilityTable = dataclasses.field(
        default_factory=DEFAULT_TYPE_COMPATIBILITY.copy
    )
    feedback: Optional["UserFeedbackStore"] = None
    repository: Optional["Repository"] = None
    #: Cache of :class:`~repro.engine.profiles.PathSetProfile` objects keyed by
    #: path tuple.  Populated lazily by :meth:`profiles`; shared by all batch
    #: matchers of one operation (and across :meth:`swapped` copies).
    profile_cache: Dict[Tuple[SchemaPath, ...], "PathSetProfile"] = dataclasses.field(
        default_factory=dict, repr=False, compare=False
    )
    #: Optional shared name-token memo handed to every profile this context
    #: builds, so tokenization is computed once per name per *session* (and,
    #: with a persistent store attached, once per name per *store lifetime* --
    #: the session seeds this dict from the store's token artifacts).
    token_memo: Optional[Dict[str, Tuple[str, ...]]] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def swapped(self) -> "MatchContext":
        """The same context with source and target schemas exchanged."""
        return dataclasses.replace(
            self, source_schema=self.target_schema, target_schema=self.source_schema
        )

    def profiles(self, paths: Sequence[SchemaPath]) -> "PathSetProfile":
        """The (cached) path-set profile of ``paths``.

        The profile computes everything matchers repeatedly derive per path --
        lowercased names, expanded token lists, n-gram sets, soundex codes,
        generic data types -- once per path set per operation, together with
        the unique-key machinery batch matchers scatter their results with.
        """
        key = tuple(paths)
        profile = self.profile_cache.get(key)
        if profile is None:
            from repro.engine.profiles import PathSetProfile

            profile = PathSetProfile(key, self.tokenizer, token_memo=self.token_memo)
            # Publish via setdefault: when several threads share the cache (a
            # session's cross-operation dict) and race to build the same
            # profile, all of them converge on the first published instance.
            profile = self.profile_cache.setdefault(key, profile)
        return profile


class StringMatcher(abc.ABC):
    """A matcher operating on two strings, returning a similarity in ``[0, 1]``."""

    name: str = "string-matcher"

    @abc.abstractmethod
    def similarity(self, a: str, b: str) -> float:
        """The similarity of two strings."""

    def memo_key(self) -> Optional[tuple]:
        """Hashable matcher identity + configuration for the kernel memo pool.

        Matchers returning a key share their per-pair results process-wide
        through :data:`repro.matchers.memo.DEFAULT_MEMO_POOL` -- the same
        (configuration, name pair) is then evaluated once per process, not
        once per schema pair.  Only deterministic, context-free kernels may
        opt in (the result must depend on nothing but the key and the two
        strings), and -- because the base implementation canonicalises the
        pair order (``pool.block(..., symmetric=True)``) -- the kernel must
        also be *symmetric*: ``similarity(a, b) == similarity(b, a)``.  An
        asymmetric matcher must override :meth:`similarity_many` and call
        the pool with ``symmetric=False`` itself.  The default (``None``)
        opts out.
        """
        return None

    def similarity_many(self, sources: Sequence[str], targets: Sequence[str]) -> np.ndarray:
        """The full cross-product similarity matrix of two string sequences.

        The default evaluates :meth:`similarity` per pair -- through the
        process-wide kernel memo pool when :meth:`memo_key` opts in, so only
        pairs never seen by *any* operation of the process are evaluated.
        Vectorizable matchers (n-gram, Soundex, EditDistance) override this
        with bulk array operations.  Callers pass *unique* strings, so the
        result is the dense kernel that :meth:`SimilarityMatrix.from_unique`
        scatters to all path pairs.
        """
        key = self.memo_key()
        if key is not None:
            from repro.matchers.memo import active_pool

            pool = active_pool()
            if pool is not None:
                return pool.block(key, sources, targets, self._pairwise_kernel)
        values = np.empty((len(sources), len(targets)), dtype=float)
        for i, a in enumerate(sources):
            for j, b in enumerate(targets):
                values[i, j] = self.similarity(a, b)
        return values

    def _pairwise_kernel(self, pairs: Sequence[Tuple[str, str]]) -> np.ndarray:
        """Evaluate :meth:`similarity` over a list of pairs (memo-pool fill)."""
        return np.array([self.similarity(a, b) for a, b in pairs], dtype=float)

    def similarity_profiled(
        self, source_profile: "PathSetProfile", target_profile: "PathSetProfile"
    ) -> np.ndarray:
        """Similarity over the unique leaf names of two path-set profiles.

        Matchers whose derived structure is pre-computed by the profile layer
        (n-gram sets, soundex codes) override this to reuse it instead of
        re-deriving it from the raw strings.
        """
        return self.similarity_many(
            source_profile.unique_names, target_profile.unique_names
        )

    def __call__(self, a: str, b: str) -> float:
        return self.similarity(a, b)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Matcher(abc.ABC):
    """A matcher producing a similarity matrix over two path sets."""

    name: str = "matcher"

    #: Broad classification used by reports (Table 3): simple / hybrid / reuse.
    kind: str = "simple"

    @abc.abstractmethod
    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Compute the similarity of every source path against every target path."""

    def compute_batch(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Batch variant of :meth:`compute` used by the match engine.

        Matchers with a vectorized implementation override this; the default
        delegates to the pairwise reference implementation so both entry
        points always produce the same matrix.
        """
        return self.compute(source_paths, target_paths, context)

    def match_schemas(self, context: MatchContext) -> SimilarityMatrix:
        """Convenience: compute over all paths of the context's schemas."""
        return self.compute(
            context.source_schema.paths(), context.target_schema.paths(), context
        )

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


def _representatives(
    paths: Sequence[SchemaPath], inverse: Sequence[int], unique_count: int
) -> List[SchemaPath]:
    """The first path carrying each unique cache key, in key order."""
    representatives: List[Optional[SchemaPath]] = [None] * unique_count
    for path, key_index in zip(paths, inverse):
        if representatives[key_index] is None:
            representatives[key_index] = path
    return representatives  # type: ignore[return-value]


class PairwiseMatcher(Matcher):
    """A matcher defined by a per-pair similarity function.

    Subclasses implement :meth:`pair_similarity`; the matrix is filled cell by
    cell.  A per-call memo keyed by a subclass-provided cache key avoids
    recomputing identical comparisons (e.g. equal leaf names appearing under
    several parents).
    """

    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        matrix = SimilarityMatrix(source_paths, target_paths)
        cache: Dict[Tuple[object, object], float] = {}
        for source in source_paths:
            source_key = self.cache_key(source, context)
            for target in target_paths:
                target_key = self.cache_key(target, context)
                key = (source_key, target_key)
                if key in cache:
                    value = cache[key]
                else:
                    value = self.pair_similarity(source, target, context)
                    value = min(1.0, max(0.0, float(value)))
                    cache[key] = value
                matrix.set(source, target, value)
        return matrix

    def compute_batch(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Evaluate :meth:`pair_similarity` over unique cache keys only.

        Instead of walking the full ``m x n`` cross-product, the batch path
        groups paths by :meth:`cache_key`, evaluates one representative path
        per unique key pair, and scatters the ``u x v`` kernel to the full
        matrix via :meth:`SimilarityMatrix.from_unique`.
        """
        from repro.engine.profiles import unique_index

        source_keys = [self.cache_key(path, context) for path in source_paths]
        target_keys = [self.cache_key(path, context) for path in target_paths]
        unique_sources, source_inverse = unique_index(source_keys)
        unique_targets, target_inverse = unique_index(target_keys)
        # One representative path per unique key (the first occurrence).
        source_reps = _representatives(source_paths, source_inverse, len(unique_sources))
        target_reps = _representatives(target_paths, target_inverse, len(unique_targets))
        values = np.empty((len(source_reps), len(target_reps)), dtype=float)
        for i, source in enumerate(source_reps):
            for j, target in enumerate(target_reps):
                values[i, j] = self.pair_similarity(source, target, context)
        return SimilarityMatrix.from_unique(
            source_paths, target_paths, values, source_inverse, target_inverse
        )

    @abc.abstractmethod
    def pair_similarity(
        self, source: SchemaPath, target: SchemaPath, context: MatchContext
    ) -> float:
        """The similarity of one source path against one target path."""

    def cache_key(self, path: SchemaPath, context: MatchContext) -> object:
        """A hashable key identifying equivalent paths for this matcher.

        The default key is the path itself (no sharing of results).  Matchers
        that only look at the leaf name may return ``path.name`` to share
        results between identically named elements.
        """
        return path


class NameStringMatcher(PairwiseMatcher):
    """Lifts a :class:`StringMatcher` to a schema matcher over element names.

    This is how the simple matchers of Section 4.1 are applied on their own:
    the string matcher compares the (raw, untokenized) leaf names of the two
    paths.
    """

    kind = "simple"

    def __init__(self, string_matcher: StringMatcher, name: Optional[str] = None):
        self._string_matcher = string_matcher
        self.name = name or string_matcher.name

    @property
    def string_matcher(self) -> StringMatcher:
        """The wrapped string matcher."""
        return self._string_matcher

    def pair_similarity(
        self, source: SchemaPath, target: SchemaPath, context: MatchContext
    ) -> float:
        return self._string_matcher.similarity(source.name, target.name)

    def compute_batch(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        """Evaluate the wrapped string matcher over the unique names only.

        The shared path-set profiles supply the unique names (and the derived
        n-gram sets / soundex codes when the string matcher can use them); the
        resulting ``u x v`` kernel is scattered to the full matrix.
        """
        source_profile = context.profiles(source_paths)
        target_profile = context.profiles(target_paths)
        unique = self._string_matcher.similarity_profiled(source_profile, target_profile)
        return SimilarityMatrix.from_unique(
            source_paths,
            target_paths,
            unique,
            source_profile.name_inverse,
            target_profile.name_inverse,
        )

    def cache_key(self, path: SchemaPath, context: MatchContext) -> object:
        return path.name
