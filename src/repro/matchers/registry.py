"""The matcher library: a registry of named matcher factories (Table 3).

COMA "provides an extensible library of match algorithms"; the registry maps
matcher names to factories so applications and the evaluation harness can
select matchers by name and new matchers can be plugged in without touching
library code.  Factories (rather than instances) are registered because some
matchers carry per-use configuration (e.g. a mapping provider for the reuse
matchers).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import UnknownMatcherError
from repro.matchers.base import Matcher, NameStringMatcher
from repro.matchers.hybrid import (
    ChildrenMatcher,
    LeavesMatcher,
    NameMatcher,
    NamePathMatcher,
    TypeNameMatcher,
)
from repro.matchers.reuse import FragmentReuseMatcher, SchemaReuseMatcher, schema_a, schema_m
from repro.matchers.simple import (
    DataTypeMatcher,
    SynonymMatcher,
    UserFeedbackMatcher,
    affix_matcher,
    digram_matcher,
    edit_distance_matcher,
    soundex_matcher,
    trigram_matcher,
)

#: A factory producing a fresh matcher instance.
MatcherFactory = Callable[[], Matcher]


@dataclasses.dataclass(frozen=True)
class MatcherInfo:
    """Metadata describing one library entry (the columns of Table 3)."""

    name: str
    kind: str
    schema_info: str
    auxiliary_info: str
    factory: MatcherFactory


class MatcherLibrary:
    """A registry of matcher factories keyed by matcher name (case-insensitive)."""

    def __init__(self) -> None:
        self._entries: Dict[str, MatcherInfo] = {}

    def register(
        self,
        name: str,
        factory: MatcherFactory,
        kind: str = "simple",
        schema_info: str = "",
        auxiliary_info: str = "",
        replace: bool = False,
    ) -> None:
        """Register a matcher factory under ``name``."""
        key = name.strip().lower()
        if key in self._entries and not replace:
            raise ValueError(f"matcher {name!r} is already registered; pass replace=True to override")
        self._entries[key] = MatcherInfo(
            name=name, kind=kind, schema_info=schema_info, auxiliary_info=auxiliary_info,
            factory=factory,
        )

    def create(self, name: str) -> Matcher:
        """Instantiate the matcher registered under ``name``."""
        key = name.strip().lower()
        if key not in self._entries:
            raise UnknownMatcherError(
                f"unknown matcher {name!r}; known matchers: {', '.join(sorted(self._entries))}"
            )
        return self._entries[key].factory()

    def create_many(self, names: Iterable[str]) -> List[Matcher]:
        """Instantiate several matchers by name, preserving order."""
        return [self.create(name) for name in names]

    def info(self, name: str) -> MatcherInfo:
        """The metadata of one registered matcher."""
        key = name.strip().lower()
        if key not in self._entries:
            raise UnknownMatcherError(f"unknown matcher {name!r}")
        return self._entries[key]

    def names(self, kind: Optional[str] = None) -> Tuple[str, ...]:
        """All registered matcher names, optionally restricted to one kind."""
        infos = sorted(self._entries.values(), key=lambda e: (e.kind, e.name))
        return tuple(e.name for e in infos if kind is None or e.kind == kind)

    def entries(self) -> Tuple[MatcherInfo, ...]:
        """All registry entries, ordered by kind then name (the rows of Table 3)."""
        return tuple(sorted(self._entries.values(), key=lambda e: (e.kind, e.name)))

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.strip().lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)


def default_library() -> MatcherLibrary:
    """The matcher library of Table 3 with all matchers implemented here."""
    library = MatcherLibrary()
    # simple matchers
    library.register("Affix", affix_matcher, kind="simple",
                     schema_info="Element names")
    library.register("Digram", digram_matcher, kind="simple",
                     schema_info="Element names")
    library.register("Trigram", trigram_matcher, kind="simple",
                     schema_info="Element names")
    library.register("EditDistance", edit_distance_matcher, kind="simple",
                     schema_info="Element names")
    library.register("Soundex", soundex_matcher, kind="simple",
                     schema_info="Element names")
    library.register("Synonym", SynonymMatcher, kind="simple",
                     schema_info="Element names", auxiliary_info="External dictionaries")
    library.register("DataType", DataTypeMatcher, kind="simple",
                     schema_info="Data types", auxiliary_info="Data type compatibility table")
    library.register("UserFeedback", UserFeedbackMatcher, kind="simple",
                     auxiliary_info="User-specified (mis-)matches")
    # hybrid matchers
    library.register("Name", NameMatcher, kind="hybrid",
                     schema_info="Element names")
    library.register("NamePath", NamePathMatcher, kind="hybrid",
                     schema_info="Names + Paths")
    library.register("TypeName", TypeNameMatcher, kind="hybrid",
                     schema_info="Data types + Names")
    library.register("Children", ChildrenMatcher, kind="hybrid",
                     schema_info="Child elements")
    library.register("Leaves", LeavesMatcher, kind="hybrid",
                     schema_info="Leaf elements")
    # reuse-oriented matchers
    library.register("Schema", SchemaReuseMatcher, kind="reuse",
                     auxiliary_info="Existing schema-level match results")
    library.register("SchemaM", schema_m, kind="reuse",
                     auxiliary_info="Manually confirmed match results")
    library.register("SchemaA", schema_a, kind="reuse",
                     auxiliary_info="Automatically derived match results")
    library.register("Fragment", FragmentReuseMatcher, kind="reuse",
                     auxiliary_info="Existing fragment-level match results")
    return library


#: The module-level default library used by the high-level API.
DEFAULT_LIBRARY = default_library()

#: The five hybrid matchers used as "single matchers" throughout the evaluation.
EVALUATION_HYBRID_MATCHERS: Tuple[str, ...] = (
    "Name", "NamePath", "TypeName", "Children", "Leaves",
)
