"""Baseline matchers used for comparison (Similarity Flooding)."""

from repro.baselines.similarity_flooding import SimilarityFloodingMatcher

__all__ = ["SimilarityFloodingMatcher"]
