"""Similarity Flooding (SF) baseline matcher.

The paper repeatedly refers to the Similarity Flooding algorithm of Melnik,
Garcia-Molina and Rahm (ICDE 2002) -- it adopts SF's Overall metric and names
SF's stable-marriage filter as future work.  To let users compare COMA's
composite approach against a purely structural fix-point algorithm, this module
provides an SF implementation over the internal schema graphs:

1. build the *pairwise connectivity graph*: a node for every pair of schema
   paths, and an edge between pairs whose constituents are connected by a
   containment step in both schemas;
2. compute the *propagation coefficients* of the induced propagation graph
   (the inverse-product formulation of the SF paper);
3. seed the fix point with an initial string similarity of the element names
   (Trigram by default);
4. iterate ``sigma' = normalise(sigma0 + sigma + propagate(sigma))`` until the
   residual drops below a threshold or the iteration limit is reached.

The result is exposed as an ordinary :class:`~repro.matchers.base.Matcher`, so
it can be used standalone, inside the combination framework, or in benches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.combination.matrix import SimilarityMatrix
from repro.matchers.base import MatchContext, Matcher, StringMatcher
from repro.matchers.string.ngram import TrigramMatcher
from repro.model.path import SchemaPath
from repro.model.schema import Schema


def _containment_edges(schema: Schema) -> List[Tuple[SchemaPath, SchemaPath]]:
    """All (parent path, child path) containment edges of a schema's path tree."""
    edges = []
    for path in schema.paths():
        parent = path.parent
        if parent is not None and parent.depth >= 1:
            edges.append((parent, path))
    return edges


class SimilarityFloodingMatcher(Matcher):
    """The Similarity Flooding fix-point matcher over two schema graphs."""

    name = "SimilarityFlooding"
    kind = "baseline"

    def __init__(
        self,
        initial_matcher: Optional[StringMatcher] = None,
        max_iterations: int = 50,
        residual_threshold: float = 1e-4,
    ):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if residual_threshold <= 0:
            raise ValueError("residual_threshold must be positive")
        self._initial_matcher = initial_matcher if initial_matcher is not None else TrigramMatcher()
        self._max_iterations = int(max_iterations)
        self._residual_threshold = float(residual_threshold)

    def compute(
        self,
        source_paths: Sequence[SchemaPath],
        target_paths: Sequence[SchemaPath],
        context: MatchContext,
    ) -> SimilarityMatrix:
        source_index = {path: i for i, path in enumerate(source_paths)}
        target_index = {path: j for j, path in enumerate(target_paths)}
        rows, columns = len(source_paths), len(target_paths)

        # Initial similarities from the configured string matcher.
        sigma0 = np.zeros((rows, columns), dtype=float)
        name_cache: Dict[Tuple[str, str], float] = {}
        for source, i in source_index.items():
            for target, j in target_index.items():
                key = (source.name.lower(), target.name.lower())
                if key not in name_cache:
                    name_cache[key] = self._initial_matcher.similarity(source.name, target.name)
                sigma0[i, j] = name_cache[key]

        # Pairwise connectivity graph: map pairs connected in both schemas.
        source_edges = [
            (source_index[p], source_index[c])
            for p, c in _containment_edges(context.source_schema)
            if p in source_index and c in source_index
        ]
        target_edges = [
            (target_index[p], target_index[c])
            for p, c in _containment_edges(context.target_schema)
            if p in target_index and c in target_index
        ]

        #: For every map pair (i, j), the list of neighbour pairs it propagates to.
        propagation: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

        def add_propagation(from_pair: Tuple[int, int], to_pair: Tuple[int, int]) -> None:
            propagation.setdefault(from_pair, []).append(to_pair)

        # Count, per pair node, how many outgoing propagation edges it has in each
        # direction so the inverse-product coefficients can be computed.
        for si_parent, si_child in source_edges:
            for ti_parent, ti_child in target_edges:
                parent_pair = (si_parent, ti_parent)
                child_pair = (si_child, ti_child)
                add_propagation(parent_pair, child_pair)
                add_propagation(child_pair, parent_pair)

        if not propagation:
            return SimilarityMatrix(source_paths, target_paths, np.clip(sigma0, 0.0, 1.0))

        out_degree = {pair: len(neighbours) for pair, neighbours in propagation.items()}

        sigma = sigma0.copy()
        for _ in range(self._max_iterations):
            incoming = np.zeros_like(sigma)
            for (i, j), neighbours in propagation.items():
                contribution = sigma[i, j] / out_degree[(i, j)]
                for (ni, nj) in neighbours:
                    incoming[ni, nj] += contribution
            updated = sigma0 + sigma + incoming
            maximum = updated.max()
            if maximum > 0:
                updated = updated / maximum
            residual = float(np.linalg.norm(updated - sigma))
            sigma = updated
            if residual < self._residual_threshold:
                break

        return SimilarityMatrix(source_paths, target_paths, np.clip(sigma, 0.0, 1.0))
