"""The session pool: N lock-guarded :class:`MatchSession` shards.

The service keeps a small fixed pool of warm sessions instead of a single
shared one.  A request acquires one shard exclusively for the duration of its
match operation, so a session never executes two operations at the same time
-- its FIFO caches fill in a deterministic per-shard order and lock
contention inside the session is zero.  Free shards live on a LIFO free-list
behind a condition variable: with more concurrent requests than shards,
surplus requests block until *any* shard is released (never on one specific
shard, which would convoy under load).

:class:`MatchSession` is itself thread-safe, so sharding is a *throughput*
choice, not a correctness requirement: one shard per expected concurrent
request keeps every request on a warm exclusive session, while the total
cache memory stays bounded by ``size`` times the per-session cache bounds.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.exceptions import ServiceError
from repro.session.session import MatchSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.match_operation import MatchOutcome

#: A callable building one worker session (one per shard).
SessionFactory = Callable[[], MatchSession]


class SessionPool:
    """A fixed pool of lock-guarded :class:`MatchSession` shards.

    Parameters
    ----------
    size:
        The number of worker sessions (one per expected concurrent request).
    session_factory:
        A zero-argument callable building one worker session; defaults to
        ``MatchSession()``.  Called ``size`` times at construction, so every
        shard starts warm and identically configured.

    Raises
    ------
    ServiceError
        If ``size`` is below 1.

    Examples
    --------
    >>> pool = SessionPool(size=2)
    >>> with pool.session() as session:
    ...     isinstance(session, MatchSession)
    True
    >>> pool.size
    2
    """

    #: The execution backend this pool implements; the process counterpart
    #: (:class:`~repro.parallel.pool.ProcessSessionPool`) reports "process".
    backend = "thread"

    def __init__(self, size: int = 4, session_factory: Optional[SessionFactory] = None):
        if size < 1:
            raise ServiceError(f"a session pool needs size >= 1, got {size}")
        factory = session_factory if session_factory is not None else MatchSession
        self._sessions: List[MatchSession] = [factory() for _ in range(size)]
        # LIFO free-list guarded by a condition: an acquirer takes *any* free
        # shard or waits until one is released (never on a specific shard --
        # waiting on one shard while others free up convoys under load).
        self._free: List[int] = list(range(size))
        self._condition = threading.Condition()

    @property
    def size(self) -> int:
        """The number of shards."""
        return len(self._sessions)

    @property
    def idle(self) -> int:
        """How many shards are free right now (``size`` when fully idle).

        A point-in-time reading for ``/stats`` and leak checks: after every
        request has finished -- including ones whose handlers raised -- this
        must equal :attr:`size` again.
        """
        with self._condition:
            return len(self._free)

    @property
    def sessions(self) -> List[MatchSession]:
        """The worker sessions (for configuration fan-out and statistics)."""
        return list(self._sessions)

    @contextlib.contextmanager
    def session(self) -> Iterator[MatchSession]:
        """Acquire one shard exclusively for the duration of the ``with`` block.

        Takes any free shard (most-recently-released first, which keeps a
        lightly loaded pool on few, warm shards); when every shard is busy
        the caller blocks until the next release, whichever shard that is.
        """
        with self._condition:
            while not self._free:
                self._condition.wait()
            index = self._free.pop()
        try:
            yield self._sessions[index]
        finally:
            with self._condition:
                self._free.append(index)
                self._condition.notify()

    def match(self, source, target, strategy=None) -> "MatchOutcome":
        """Match one pair on an exclusively acquired shard.

        This mirrors :meth:`ProcessSessionPool.match
        <repro.parallel.pool.ProcessSessionPool.match>`, so the service layer
        drives either backend through one interface.
        """
        with self.session() as session:
            return session.match(source, target, strategy=strategy)

    def match_many(self, items) -> List["MatchOutcome"]:
        """Match a batch of ``(source, target[, strategy])`` tuples on one shard."""
        with self.session() as session:
            return session.match_many(items)

    def cache_info(self) -> Dict[str, object]:
        """Aggregated cache statistics over all shards.

        Returns
        -------
        dict
            ``backend`` plus ``shards`` (the per-shard ``cache_info`` list)
            plus the summed ``profiles`` / ``cubes`` / ``cube_hits`` /
            ``cube_misses`` / ``store_hits`` / ``store_misses``.

        Examples
        --------
        >>> info = SessionPool(size=2).cache_info()
        >>> info["backend"], info["cube_hits"], len(info["shards"])
        ('thread', 0, 2)
        """
        shards = [session.cache_info() for session in self._sessions]
        totals = {
            key: sum(shard[key] for shard in shards)
            for key in (
                "profiles", "cubes", "cube_hits", "cube_misses",
                "store_hits", "store_misses",
            )
        }
        return {"backend": self.backend, "shards": shards, **totals}

    def clear_caches(self) -> None:
        """Drop the caches of every shard."""
        for session in self._sessions:
            session.clear_caches()

    def close(self) -> None:
        """Close every shard (releasing session-owned persistent resources)."""
        for session in self._sessions:
            session.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SessionPool(size={self.size})"
