"""The service layer: the match session behind a network boundary.

The paper's deployment story -- one COMA instance whose repository, cubes and
strategies many users share -- needs the warm session (and its ~2.7x cache
reuse win) to live *behind* a network boundary.  This package provides that:

* :class:`~repro.service.server.MatchService` -- the transport-agnostic core:
  schema registry, strategy registry, and a
  :class:`~repro.service.pool.SessionPool` of lock-guarded worker sessions;
* :class:`~repro.service.server.MatchServiceServer` /
  :func:`~repro.service.server.create_server` /
  :func:`~repro.service.server.serve` -- the stdlib-only threading HTTP shell
  (``coma serve`` on the command line);
* :class:`~repro.service.client.ServiceClient` -- the matching stdlib-only
  client.

See ``docs/service.md`` for the endpoint reference and deployment guide.
"""

from __future__ import annotations

from repro.service.aserver import (
    AsyncMatchServiceServer,
    create_async_server,
    serve_async,
)
from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobEventStream, JobManager
from repro.service.pool import SessionPool
from repro.service.server import (
    MatchService,
    MatchServiceServer,
    create_server,
    serve,
)

__all__ = [
    "AsyncMatchServiceServer",
    "Job",
    "JobEventStream",
    "JobManager",
    "MatchService",
    "MatchServiceServer",
    "ServiceClient",
    "SessionPool",
    "create_async_server",
    "create_server",
    "serve",
    "serve_async",
]
