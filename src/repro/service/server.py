"""The match service: COMA's session layer behind an HTTP boundary.

A stdlib-only JSON API (``http.server.ThreadingHTTPServer``) wrapping a pool
of warm :class:`~repro.session.session.MatchSession` workers -- in-process
shards (:class:`~repro.service.pool.SessionPool`, the default ``thread``
backend) or spawned worker processes
(:class:`~repro.parallel.pool.ProcessSessionPool`, the ``process`` backend
that scales warm throughput past the GIL) -- so the session's
cross-operation caches (path profiles, similarity cubes) keep paying off
across *network* requests, not just in-process calls.

Endpoints (all request/response bodies are JSON):

=======  ====================  ==============================================
method   path                  purpose
=======  ====================  ==============================================
GET      ``/health``           liveness probe with registry/pool counts
GET      ``/stats``            cache occupancy + request counters per shard
GET      ``/schemas``          list the uploaded schemas
POST     ``/schemas``          upload a schema through the importers registry
GET      ``/schemas/{name}``   statistics of one uploaded schema
DELETE   ``/schemas/{name}``   remove one uploaded schema
POST     ``/match``            match two uploaded schemas
POST     ``/match/batch``      match many pairs in one session acquisition
POST     ``/search``           top-K corpus search for an uploaded schema
GET      ``/corpus``           schema-corpus occupancy and registered names
POST     ``/jobs``             start a background batch/search campaign (202)
GET      ``/jobs``             the jobs table (per-state counts + snapshots)
GET      ``/jobs/{id}``        one job's progress/result snapshot
DELETE   ``/jobs/{id}``        cancel a running job
GET      ``/jobs/{id}/events`` NDJSON stream of the job's progress events
GET      ``/strategies``       list the stored named strategies
POST     ``/strategies``       store a named strategy spec
GET      ``/strategies/{name}``  one stored strategy (spec + dict form)
DELETE   ``/strategies/{name}``  delete a stored strategy
POST     ``/shutdown``         stop the server (used by tests and ops)
=======  ====================  ==============================================

Errors are JSON too -- ``{"error": "<message>"}`` with a 4xx/5xx status; the
:class:`~repro.service.client.ServiceClient` raises them as
:class:`~repro.exceptions.ServiceError`.

See ``docs/service.md`` for the full endpoint reference and deployment guide.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.strategy import MatchStrategy
from repro.exceptions import ComaError, FaultInjected, ServiceError
from repro.importers.registry import DEFAULT_IMPORTERS, ImporterRegistry
from repro.model.schema import Schema
from repro.service.jobs import JobEventStream, JobManager
from repro.service.pool import SessionFactory, SessionPool
from repro.session.session import MatchSession, StrategyLike

__version__ = "1.0"

#: Response payload limit guard: refuse request bodies beyond this size.
MAX_BODY_BYTES = 16 * 1024 * 1024


class MatchService:
    """The service core: schema registry, strategy registry and session pool.

    The service is transport-agnostic -- :meth:`handle_request` maps a
    ``(method, path, payload)`` triple to a ``(status, payload)`` pair, and
    the HTTP layer (:class:`MatchServiceServer`) is a thin shell around it.
    All registry state is guarded by one lock; match execution happens on an
    exclusively acquired pool shard outside that lock, so slow matches do not
    serialise unrelated requests.

    Parameters
    ----------
    pool_size:
        The number of warm workers (one per expected concurrent request):
        pooled sessions for the thread backend, worker processes for the
        process backend.
    backend:
        ``"thread"`` (default) keeps every worker session in this process
        behind a :class:`~repro.service.pool.SessionPool`; ``"process"``
        spawns a :class:`~repro.parallel.pool.ProcessSessionPool` of worker
        processes, so warm match throughput scales with the cores instead of
        the GIL.  Results are byte-identical either way; see
        ``docs/service.md`` for the selection guide.
    repository_path:
        Optional SQLite file backing the strategy registry (and the reuse
        matchers of every worker session).  Opened ``threadsafe=True`` and
        shared by all shards; strategies stored through the service are
        visible to other sessions over the same file.
    store_path:
        Optional persistent similarity store
        (:class:`~repro.repository.store.SimilarityStore`) shared by all
        pool shards: cube-cache misses are served by content address from
        disk, so a restarted service answers repeated match workloads warm
        from its very first request.  See ``docs/service.md`` for sizing and
        invalidation guidance.
    store_dtype:
        The storage dtype for cubes the store writes: ``"float64"``
        (default, bit-identical round trips), ``"float32"``, or quantized
        ``"uint16"`` (quarter the bytes at a tested ~1e-5 tolerance).
        Applies to the service's own store handle and, on the process
        backend, to every worker's store connection.  Requires
        ``store_path``; see ``docs/service.md`` for the selection guide.
    corpus_path:
        Optional schema corpus (:class:`~repro.search.corpus.SchemaCorpus`
        SQLite file, or ``":memory:"``) enabling the ``POST /search`` /
        ``GET /corpus`` endpoints.  Uploaded schemas are registered into the
        corpus automatically (and deregistered on delete), so a service
        fed schemas over ``POST /schemas`` builds its search index as it
        goes; survivor matching fans out over the configured backend.  See
        ``docs/search.md``.
    importers:
        The importer registry resolving upload formats (default: the
        built-in relational / xsd / dict importers).
    session_factory:
        Overrides worker-session construction (e.g. to configure a custom
        library or default strategy).  The repository is not attached
        automatically when a factory is given.
    default_strategy:
        The strategy spec worker sessions fall back to when a match request
        names none (default: the paper's default operation).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` (or its ``to_dict()``
        document) armed process-wide for chaos runs.  Process-backend
        workers receive the same plan through their spawn options, so one
        plan exercises both sides of the pipe.  ``coma serve`` only accepts
        ``--fault-plan`` when ``COMA_ENABLE_FAULTS=1`` is set; see
        ``docs/robustness.md``.

    Examples
    --------
    >>> service = MatchService(pool_size=1)
    >>> status, payload = service.handle_request("GET", "/health", None)
    >>> status, payload["status"]
    (200, 'ok')
    """

    def __init__(
        self,
        pool_size: int = 4,
        backend: str = "thread",
        repository_path: Optional[str] = None,
        store_path: Optional[str] = None,
        store_dtype: Optional[str] = None,
        corpus_path: Optional[str] = None,
        importers: Optional[ImporterRegistry] = None,
        session_factory: Optional[SessionFactory] = None,
        default_strategy: Optional[str] = None,
        fault_plan: Optional[object] = None,
    ):
        if backend not in ("thread", "process"):
            raise ServiceError(
                f"unknown service backend {backend!r}: choose 'thread' or 'process'"
            )
        if backend == "process" and session_factory is not None:
            raise ServiceError(
                "session_factory only applies to the thread backend (process "
                "workers build their sessions from primitive options in their "
                "own interpreter)"
            )
        self._backend = backend
        self._fault_plan = None
        if fault_plan is not None:
            from repro import faults

            # Armed before the pool spawns so process workers inherit the
            # plan document through their spawn options (fresh counters per
            # process, which is what crash-loop scenarios need).
            plan = (
                fault_plan
                if isinstance(fault_plan, faults.FaultPlan)
                else faults.FaultPlan.from_dict(dict(fault_plan))
            )
            faults.arm(plan)
            self._fault_plan = plan
        #: Event-driven degradation marks: component name -> failure detail.
        #: Store degradation is derived from its corruption counters instead
        #: (the failures happen inside worker processes, not here).
        self._degraded: Dict[str, str] = {}
        self._repository = None
        if repository_path:
            from repro.repository.repository import Repository

            self._repository = Repository(repository_path, threadsafe=True)
        if store_dtype is not None:
            from repro.repository.store import CUBE_DTYPES

            if store_dtype not in CUBE_DTYPES:
                raise ServiceError(
                    f"unknown store dtype {store_dtype!r}, "
                    f"expected one of {CUBE_DTYPES}"
                )
            if not store_path:
                raise ServiceError("store_dtype requires a store_path")
        self._store = None
        if store_path:
            from repro.repository.store import SimilarityStore

            self._store = SimilarityStore(store_path, dtype=store_dtype or "float64")
        if backend == "process":
            from repro.matchers.registry import DEFAULT_LIBRARY
            from repro.parallel.pool import ProcessSessionPool

            # Workers open their own connections to the shared repository /
            # store files; the parent-side handles above serve the strategy
            # registry and the /stats occupancy numbers.
            self._pool = ProcessSessionPool(
                pool_size,
                store_path=store_path,
                repository_path=repository_path,
                store_dtype=store_dtype if store_path else None,
                default_strategy=default_strategy,
            )
            self._library = DEFAULT_LIBRARY
        else:
            if session_factory is None:
                repository = self._repository
                store = self._store

                def session_factory() -> MatchSession:
                    return MatchSession(
                        repository=repository, store=store, strategy=default_strategy
                    )

            self._pool = SessionPool(pool_size, session_factory)
            self._library = self._pool.sessions[0].library
        self._corpus = None
        self._search_session = None
        if corpus_path:
            from repro.search.corpus import SchemaCorpus
            from repro.search.searcher import CorpusSearcher

            # The search session only *ranks* (profile cache + index); the
            # expensive survivor matching is routed through the worker pool
            # via the searcher's match_many override, so both backends fan
            # out identically and results stay byte-identical to the
            # in-process MatchSession.search path.
            self._search_session = MatchSession()
            self._corpus = SchemaCorpus(
                corpus_path, tokenizer=self._search_session.tokenizer
            )
            self._searcher = CorpusSearcher(self._search_session, self._corpus)
        self._importers = importers if importers is not None else DEFAULT_IMPORTERS
        self._schemas: Dict[str, Schema] = {}
        self._strategies: Dict[str, MatchStrategy] = {}
        self._state_lock = threading.RLock()
        self._request_counts: Dict[str, int] = {}
        self._started = time.monotonic()
        self._jobs = JobManager(self)
        #: The serving front-end ("sync" | "async"); the async server flips
        #: this and installs a live :attr:`frontend_stats` provider.
        self.frontend_name = "sync"
        self.frontend_stats: Optional[Callable[[], dict]] = None

    # -- registries ------------------------------------------------------------

    @property
    def pool(self):
        """The underlying worker pool (:class:`~repro.service.pool.SessionPool`
        or :class:`~repro.parallel.pool.ProcessSessionPool`)."""
        return self._pool

    @property
    def backend(self) -> str:
        """The execution backend: ``"thread"`` or ``"process"``."""
        return self._backend

    @property
    def jobs(self) -> JobManager:
        """The background-jobs table (:class:`~repro.service.jobs.JobManager`)."""
        return self._jobs

    def schema(self, name: str) -> Schema:
        """The uploaded schema registered under ``name``.

        Raises
        ------
        ServiceError
            With status 404 when no schema of that name was uploaded.
        """
        with self._state_lock:
            schema = self._schemas.get(name)
            known = ", ".join(sorted(self._schemas)) or "none uploaded yet"
        if schema is None:
            raise ServiceError(
                f"no schema named {name!r}; known schemas: {known}", status=404
            )
        return schema

    def register_schema(self, schema: Schema) -> bool:
        """Register a schema under its own name; True when it replaced one.

        With a corpus attached, the schema is also indexed for
        ``POST /search`` (replacing any previous registration of the name).
        """
        with self._state_lock:
            replaced = schema.name in self._schemas
            self._schemas[schema.name] = schema
        if self._corpus is not None:
            self._corpus.add(
                schema,
                replace=True,
                profile=self._search_session.profile_for(schema),
            )
        return replaced

    def resolve_strategy(self, reference: StrategyLike) -> Optional[MatchStrategy]:
        """Resolve a request's strategy reference at the service level.

        ``None`` keeps the worker session's default.  A spec string (it
        contains parentheses) is parsed against the library; any other string
        is looked up in the service strategy registry, then the repository.

        Raises
        ------
        ServiceError
            With status 404 for an unknown stored name, 400 for an invalid
            spec or reference type.
        """
        if reference is None:
            return None
        if isinstance(reference, MatchStrategy):
            return reference
        if not isinstance(reference, str):
            raise ServiceError(
                f"'strategy' must be a spec string or a stored name, "
                f"got {type(reference).__name__}", status=400,
            )
        if "(" in reference:
            try:
                return MatchStrategy.parse(reference, library=self._library)
            except ComaError as error:
                raise ServiceError(f"invalid strategy spec: {error}", status=400)
        with self._state_lock:
            stored = self._strategies.get(reference)
        if stored is not None:
            return stored
        if self._repository is not None and self._repository.has_strategy(reference):
            loaded = self._repository.load_strategy(reference, library=self._library)
            with self._state_lock:
                self._strategies.setdefault(reference, loaded)
            return loaded
        known = ", ".join(self.strategy_names()) or "none stored yet"
        raise ServiceError(
            f"no stored strategy named {reference!r}; stored strategies: {known}",
            status=404,
        )

    def strategy_names(self) -> Tuple[str, ...]:
        """Sorted names of all stored strategies (registry + repository)."""
        with self._state_lock:
            names = set(self._strategies)
        if self._repository is not None:
            names.update(self._repository.strategy_names())
        return tuple(sorted(names))

    # -- request dispatch ------------------------------------------------------

    def handle_request(
        self, method: str, path: str, payload: Optional[dict]
    ) -> Tuple[int, Union[dict, JobEventStream]]:
        """Map one request to a ``(status, response payload)`` pair.

        Unknown routes yield 404, method mismatches 405, all
        :class:`~repro.exceptions.ServiceError` raises their carried status
        (plus any structured ``details`` merged into the error payload) and
        any other :class:`~repro.exceptions.ComaError` a 400.  One route
        (``GET /jobs/<id>/events``) answers with a
        :class:`~repro.service.jobs.JobEventStream` instead of a JSON dict;
        the front-ends render it as a chunked NDJSON response.
        """
        segments = [
            urllib.parse.unquote(part)
            for part in path.split("?")[0].split("/")
            if part
        ]
        route = (method.upper(), *segments)
        self._count_request(segments)
        try:
            return self._dispatch(route, payload if payload is not None else {})
        except ServiceError as error:
            return (error.status or 400, {"error": str(error), **error.details})
        except ComaError as error:
            return (400, {"error": str(error)})

    #: Top-level route segments with their own request counter; everything
    #: else (unknown probes, arbitrary names) collapses into fixed templates
    #: so the counter dict stays bounded on a long-lived server.
    _COUNTED_ROUTES = frozenset(
        {"schemas", "match", "rematch", "strategies", "health", "stats",
         "shutdown", "search", "corpus", "jobs"}
    )

    def _count_request(self, segments: List[str]) -> None:
        if not segments:
            key = "/"
        elif segments[0] not in self._COUNTED_ROUTES:
            key = "<other>"
        elif len(segments) == 1:
            key = segments[0]
        elif segments[:2] == ["match", "batch"]:
            key = "match/batch"
        else:
            key = f"{segments[0]}/*"
        with self._state_lock:
            self._request_counts[key] = self._request_counts.get(key, 0) + 1

    def _dispatch(self, route: Tuple[str, ...], payload: dict) -> Tuple[int, dict]:
        if route == ("GET", "health"):
            return 200, self._health()
        if route == ("GET", "stats"):
            return 200, self._stats()
        if route == ("GET", "schemas"):
            return 200, self._list_schemas()
        if route == ("POST", "schemas"):
            return self._upload_schema(payload)
        if len(route) == 3 and route[0] == "GET" and route[1] == "schemas":
            return 200, self._schema_details(route[2])
        if len(route) == 3 and route[0] == "DELETE" and route[1] == "schemas":
            return self._delete_schema(route[2])
        if route == ("POST", "match"):
            return 200, self._match(payload)
        if route == ("POST", "match", "batch"):
            return 200, self._match_batch(payload)
        if route == ("POST", "rematch"):
            return 200, self._rematch(payload)
        if route == ("POST", "search"):
            return 200, self._search(payload)
        if route == ("GET", "corpus"):
            return 200, self._corpus_info()
        if route == ("GET", "jobs"):
            return 200, self._jobs.info()
        if route == ("POST", "jobs"):
            return self._jobs.submit(payload)
        if len(route) == 3 and route[0] == "GET" and route[1] == "jobs":
            return 200, self._jobs.get(route[2]).status()
        if len(route) == 3 and route[0] == "DELETE" and route[1] == "jobs":
            return self._cancel_job(route[2])
        if len(route) == 4 and route[0] == "GET" and route[1] == "jobs" \
                and route[3] == "events":
            return 200, JobEventStream(self._jobs, self._jobs.get(route[2]))
        if route == ("GET", "strategies"):
            return 200, self._list_strategies()
        if route == ("POST", "strategies"):
            return self._store_strategy(payload)
        if len(route) == 3 and route[0] == "GET" and route[1] == "strategies":
            return 200, self._strategy_details(route[2])
        if len(route) == 3 and route[0] == "DELETE" and route[1] == "strategies":
            return self._delete_strategy(route[2])
        if len(route) > 1 and route[1] in self._COUNTED_ROUTES:
            return 405, {"error": f"method {route[0]} is not supported on /{route[1]}"}
        return 404, {"error": f"unknown route /{'/'.join(route[1:])}"}

    # -- endpoint implementations ----------------------------------------------

    def component_health(self) -> dict:
        """Per-component health: ``pool`` / ``store`` / ``corpus`` states.

        Each entry carries ``status`` (``"ok"`` or ``"degraded"``) plus the
        evidence: the pool reports its circuit-breaker / watchdog counters
        (process backend), the store its corruption and quarantine counters,
        the corpus the last infrastructure failure that forced a typed 503.
        A degraded component keeps serving -- matching recomputes around
        quarantined blobs and breaker-routed chunks run in-process -- so
        this block is an operator signal, not an availability bit.
        """
        components: Dict[str, dict] = {}
        pool_entry: Dict[str, object] = {
            "status": "ok",
            "size": self._pool.size,
            "idle": self._pool.idle,
        }
        resilience_info = getattr(self._pool, "resilience_info", None)
        if resilience_info is not None:
            resilience = resilience_info()
            if resilience["breaker"]["state"] == "open":
                pool_entry["status"] = "degraded"
                pool_entry["detail"] = (
                    "circuit breaker open: match chunks run in-process "
                    "until a worker probe succeeds"
                )
            pool_entry.update(resilience)
        components["pool"] = pool_entry
        if self._store is not None:
            info = self._store.info()
            corrupt = int(info.get("corrupt", 0))
            quarantined = int(info.get("quarantined", 0))
            store_entry: Dict[str, object] = {
                "status": "degraded" if corrupt else "ok",
                "corrupt": corrupt,
                "quarantined": quarantined,
            }
            if corrupt:
                store_entry["detail"] = (
                    f"{corrupt} corrupt blob(s) detected this process "
                    f"({quarantined} quarantined); affected keys recompute"
                )
            components["store"] = store_entry
        if self._corpus is not None:
            with self._state_lock:
                detail = self._degraded.get("corpus")
            corpus_entry: Dict[str, object] = {
                "status": "degraded" if detail else "ok",
            }
            if detail:
                corpus_entry["detail"] = detail
            components["corpus"] = corpus_entry
        return components

    def _health(self) -> dict:
        with self._state_lock:
            schema_count = len(self._schemas)
        jobs = self._jobs.info()["by_state"]
        components = self.component_health()
        degraded = any(
            entry["status"] != "ok" for entry in components.values()
        )
        return {
            "status": "degraded" if degraded else "ok",
            "components": components,
            "service": f"coma-match-service/{__version__}",
            "backend": self._backend,
            "frontend": self.frontend_name,
            "pool_size": self._pool.size,
            "jobs_running": jobs["running"],
            "schemas": schema_count,
            "strategies": len(self.strategy_names()),
            "repository": self._repository.path if self._repository else None,
            "store": self._store.path if self._store else None,
            "corpus": self._corpus.path if self._corpus else None,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }

    def _stats(self) -> dict:
        from repro.matchers.memo import DEFAULT_MEMO_POOL

        with self._state_lock:
            requests = dict(sorted(self._request_counts.items()))
            schema_count = len(self._schemas)
        frontend = (
            self.frontend_stats()
            if self.frontend_stats is not None
            else {"kind": self.frontend_name}
        )
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "backend": self._backend,
            "frontend": frontend,
            "schemas": schema_count,
            "strategies": len(self.strategy_names()),
            "requests": {"total": sum(requests.values()), "by_route": requests},
            "pool": {
                "size": self._pool.size,
                "idle": self._pool.idle,
                **self._pool.cache_info(),
                **(
                    {"resilience": self._pool.resilience_info()}
                    if hasattr(self._pool, "resilience_info")
                    else {}
                ),
            },
            "jobs": self._jobs.info(),
            "kernel_memo": DEFAULT_MEMO_POOL.info(),
            "store": self._store.info() if self._store is not None else None,
            "corpus": self._corpus.info() if self._corpus is not None else None,
        }

    def close(self) -> None:
        """Release the worker pool and persistent resources.  Idempotent.

        Process-backend workers are shut down (each flushes its own store
        connection); closing the parent store folds its process-local
        hit/miss counters into the on-disk lifetime totals, which is what
        ``coma stats --store`` reads.  Running background jobs are cancelled
        first, so no job thread is still holding a pool shard when the pool
        goes down.
        """
        self._jobs.close()
        if self._backend == "process":
            self._pool.close()
        if self._store is not None:
            self._store.close()
        if self._corpus is not None:
            self._corpus.close()
        if self._fault_plan is not None:
            from repro import faults

            if faults.active_plan() is self._fault_plan:
                faults.disarm()
            self._fault_plan = None

    def _list_schemas(self) -> dict:
        with self._state_lock:
            schemas = dict(self._schemas)
        return {
            "schemas": [
                {"name": name, "paths": len(schema.paths())}
                for name, schema in sorted(schemas.items())
            ]
        }

    def _upload_schema(self, payload: dict) -> Tuple[int, dict]:
        if not isinstance(payload, dict):
            raise ServiceError("the upload payload must be a JSON object", status=400)
        name = payload.get("name")
        spec = payload.get("spec")
        text = payload.get("text")
        format_name = payload.get("format")
        if spec is not None and text is not None:
            raise ServiceError(
                "pass either 'text' (with a 'format') or an inline dict 'spec', "
                "not both", status=400,
            )
        if spec is not None:
            text = json.dumps(spec)
            format_name = format_name or "dict"
        if not isinstance(text, str) or not text.strip():
            raise ServiceError(
                "schema uploads need a non-empty 'text' (or a dict 'spec')",
                status=400,
            )
        if not format_name:
            raise ServiceError(
                f"schema uploads need a 'format'; known formats: "
                f"{', '.join(self._importers.formats())}", status=400,
            )
        importer = self._importers.by_format(str(format_name))
        schema = importer.import_text(text, str(name) if name else "schema")
        replaced = self.register_schema(schema)
        statistics = schema.statistics()
        return (200 if replaced else 201), {
            "name": schema.name,
            "format": importer.format_name,
            "paths": len(schema.paths()),
            "statistics": statistics.as_row(),
            "replaced": replaced,
        }

    def _schema_details(self, name: str) -> dict:
        schema = self.schema(name)
        return {
            "name": schema.name,
            "paths": len(schema.paths()),
            "statistics": schema.statistics().as_row(),
        }

    def _delete_schema(self, name: str) -> Tuple[int, dict]:
        with self._state_lock:
            removed = self._schemas.pop(name, None)
        if removed is None:
            raise ServiceError(f"no schema named {name!r}", status=404)
        if self._corpus is not None:
            self._corpus.remove(name)
        return 200, {"deleted": name}

    def _match_request(
        self, payload: dict, default_min_similarity: float = 0.0
    ) -> Tuple[Schema, Schema, Optional[MatchStrategy], float]:
        if not isinstance(payload, dict):
            raise ServiceError("the match payload must be a JSON object", status=400)
        for field in ("source", "target"):
            if not isinstance(payload.get(field), str):
                raise ServiceError(
                    f"match requests need a {field!r} schema name", status=400
                )
        source = self.schema(payload["source"])
        target = self.schema(payload["target"])
        strategy = self.resolve_strategy(payload.get("strategy"))
        try:
            min_similarity = float(
                payload.get("min_similarity", default_min_similarity)
            )
        except (TypeError, ValueError):
            raise ServiceError("'min_similarity' must be a number", status=400)
        return source, target, strategy, min_similarity

    @staticmethod
    def outcome_payload(outcome, min_similarity: float) -> dict:
        """The JSON form of one match outcome (thresholded correspondences).

        Shared by ``/match``, ``/match/batch``, ``/search`` and the jobs
        runner, so every execution path serialises outcomes identically (the
        differential suite hashes these payloads across front-ends and
        backends).
        """
        correspondences = [
            {
                "source": c.source.dotted(),
                "target": c.target.dotted(),
                "similarity": c.similarity,
            }
            for c in outcome.result.correspondences
            if c.similarity >= min_similarity
        ]
        return {
            "source": outcome.context.source_schema.name,
            "target": outcome.context.target_schema.name,
            "strategy": outcome.strategy.to_spec(),
            "schema_similarity": outcome.schema_similarity,
            "correspondences": correspondences,
            "correspondence_count": len(correspondences),
        }

    def _match(self, payload: dict) -> dict:
        source, target, strategy, min_similarity = self._match_request(payload)
        # Both pool flavours expose the same match interface: the thread pool
        # acquires one warm shard, the process pool one worker process.
        outcome = self._pool.match(source, target, strategy=strategy)
        return self.outcome_payload(outcome, min_similarity)

    def _rematch(self, payload: dict) -> dict:
        """``POST /rematch``: incrementally re-match an evolved schema.

        The payload names three uploaded schemas: ``old`` and ``new`` are
        two versions of the evolving schema, ``target`` the unchanged
        opposite side.  On the thread backend one warm session splices the
        previous cube (``MatchSession.rematch``); the process backend falls
        back to a full match -- either way the match payload is
        byte-identical to ``POST /match`` on ``(new, target)``, and the
        ``"rematch"`` block reports the delta and whether splicing happened.
        """
        from repro.model.digests import schema_delta

        if not isinstance(payload, dict):
            raise ServiceError("the rematch payload must be a JSON object", status=400)
        for field in ("old", "new", "target"):
            if not isinstance(payload.get(field), str):
                raise ServiceError(
                    f"rematch requests need an {field!r} schema name", status=400
                )
        old = self.schema(payload["old"])
        new = self.schema(payload["new"])
        target = self.schema(payload["target"])
        strategy = self.resolve_strategy(payload.get("strategy"))
        try:
            min_similarity = float(payload.get("min_similarity", 0.0))
        except (TypeError, ValueError):
            raise ServiceError("'min_similarity' must be a number", status=400)

        delta = schema_delta(old, new)
        spliced = False
        if hasattr(self._pool, "session"):
            with self._pool.session() as session:
                before = session.cache_info()["rematch_spliced"]
                outcome = session.rematch(old, new, target=target, strategy=strategy)
                spliced = session.cache_info()["rematch_spliced"] > before
        else:
            # Process workers hold their own sessions behind a match-shaped
            # wire protocol; the full match is still byte-identical, only the
            # splice shortcut is unavailable.
            outcome = self._pool.match(new, target, strategy=strategy)
        body = self.outcome_payload(outcome, min_similarity)
        body["rematch"] = {
            "spliced": spliced,
            "reused_rows": delta.reused,
            "recomputed_rows": delta.recomputed,
            "added": list(delta.added),
            "removed": list(delta.removed),
        }
        return body

    def resolve_batch(
        self, payload: dict
    ) -> Tuple[List[Tuple[Schema, Schema, Optional[MatchStrategy]]], List[float]]:
        """Resolve a batch payload into ``(items, thresholds)``, exhaustively.

        A bad entry fails the whole batch before any match work is spent, and
        *every* invalid entry is reported -- the raised
        :class:`~repro.exceptions.ServiceError` carries an ``"invalid"``
        details list of ``{"index", "error"}`` objects, one per bad request,
        so one round trip surfaces all the fixes a client needs to make.
        Shared by ``POST /match/batch`` and batch job submission.
        """
        if not isinstance(payload, dict) or not isinstance(payload.get("requests"), list):
            raise ServiceError(
                "batch matches need a 'requests' list of "
                "{source, target[, strategy]} objects", status=400,
            )
        default = self.resolve_strategy(payload.get("strategy"))
        try:
            default_threshold = float(payload.get("min_similarity", 0.0))
        except (TypeError, ValueError):
            raise ServiceError("'min_similarity' must be a number", status=400)
        items: List[Tuple[Schema, Schema, Optional[MatchStrategy]]] = []
        thresholds: List[float] = []
        invalid: List[dict] = []
        for index, entry in enumerate(payload["requests"]):
            try:
                source, target, strategy, min_similarity = self._match_request(
                    entry if isinstance(entry, dict) else {},
                    default_min_similarity=default_threshold,
                )
            except ServiceError as error:
                invalid.append({"index": index, "error": str(error)})
                continue
            items.append((source, target, strategy if strategy is not None else default))
            thresholds.append(min_similarity)
        if invalid:
            raise ServiceError(
                f"{len(invalid)} of {len(payload['requests'])} batch requests "
                f"are invalid (see 'invalid' for each index)",
                status=400, details={"invalid": invalid},
            )
        return items, thresholds

    def _match_batch(self, payload: dict) -> dict:
        items, thresholds = self.resolve_batch(payload)
        outcomes = self._pool.match_many(items)
        return {
            "results": [
                self.outcome_payload(outcome, threshold)
                for outcome, threshold in zip(outcomes, thresholds)
            ],
            "count": len(outcomes),
        }

    def _cancel_job(self, job_id: str) -> Tuple[int, dict]:
        job = self._jobs.get(job_id)
        cancelled = job.cancel()
        return 200, {"job": job_id, "cancelled": cancelled}

    def _require_corpus(self):
        if self._corpus is None:
            raise ServiceError(
                "this service has no schema corpus; start it with "
                "--corpus <path> (corpus_path=) to enable search", status=400,
            )
        return self._corpus

    @contextlib.contextmanager
    def _corpus_guard(self):
        """Convert corpus infrastructure failures into a typed 503.

        Bad *requests* (unknown schema, invalid strategy) keep their 4xx
        semantics; this guard only catches the failure classes that mean the
        corpus itself is unhealthy -- sqlite errors (index loss, locked or
        torn database), OS errors (unreadable file) and injected faults.
        The component is marked degraded for ``GET /health``; the next
        successful search clears the mark.
        """
        try:
            yield
        except (sqlite3.Error, OSError, FaultInjected) as error:
            detail = f"{type(error).__name__}: {error}"
            with self._state_lock:
                self._degraded["corpus"] = detail
            raise ServiceError(
                f"corpus search unavailable: {error}",
                status=503,
                details={"component": "corpus"},
            )

    def _corpus_info(self) -> dict:
        corpus = self._require_corpus()
        with self._corpus_guard():
            info = corpus.info()
            info["names"] = list(corpus.names())
        return info

    def validate_search(self, payload: dict) -> dict:
        """Resolve a search payload into a validated, executable request.

        Fails fast (schema existence, strategy resolution, numeric fields)
        without running any search work -- ``POST /jobs`` submissions call
        this so an invalid search campaign is rejected at submit time, then
        hand the returned dict to :meth:`run_search` on the job thread.
        """
        corpus = self._require_corpus()
        if not isinstance(payload, dict) or not isinstance(payload.get("source"), str):
            raise ServiceError(
                "search requests need a 'source' schema name "
                "(an uploaded or corpus-registered schema)", status=400,
            )
        name = payload["source"]
        with self._state_lock:
            schema = self._schemas.get(name)
        if schema is None:
            if not corpus.has(name):
                raise ServiceError(
                    f"no schema named {name!r} uploaded or registered in the "
                    f"corpus", status=404,
                )
            with self._corpus_guard():
                schema = corpus.load(name)
        strategy = self.resolve_strategy(payload.get("strategy"))
        try:
            k = int(payload.get("k", 10))
            candidates = payload.get("candidates")
            candidates = None if candidates is None else int(candidates)
            min_similarity = float(payload.get("min_similarity", 0.0))
        except (TypeError, ValueError):
            raise ServiceError(
                "'k' and 'candidates' must be integers and 'min_similarity' "
                "a number", status=400,
            )
        return {
            "name": name, "schema": schema, "strategy": strategy, "k": k,
            "candidates": candidates, "min_similarity": min_similarity,
        }

    def run_search(self, validated: dict) -> dict:
        """Execute a :meth:`validate_search`-resolved request.

        The cheap index ranking runs on the service's search session; the
        full pipeline on the survivors fans out through the worker pool
        (thread or process backend alike), so the ranked results are
        byte-identical to an in-process ``MatchSession.search`` over the
        same corpus.
        """
        corpus = self._require_corpus()
        name, k = validated["name"], validated["k"]
        min_similarity = validated["min_similarity"]
        with self._corpus_guard():
            results = self._searcher.search(
                validated["schema"],
                k=k,
                strategy=validated["strategy"],
                candidates=validated["candidates"],
                match_many=self._pool.match_many,
            )
        # A full search round trip is the recovery probe: the corpus served
        # its index again, so the degradation mark comes off.
        with self._state_lock:
            self._degraded.pop("corpus", None)
        return {
            "query": name,
            "k": k,
            "corpus_size": len(corpus),
            "results": [
                {
                    "rank": rank,
                    "name": result.name,
                    "candidate_score": result.candidate_score,
                    **self.outcome_payload(result.outcome, min_similarity),
                }
                for rank, result in enumerate(results, start=1)
            ],
            "count": len(results),
        }

    def _search(self, payload: dict) -> dict:
        """``POST /search``: top-K pruned corpus search for an uploaded schema."""
        return self.run_search(self.validate_search(payload))

    def _list_strategies(self) -> dict:
        entries = []
        for name in self.strategy_names():
            strategy = self.resolve_strategy(name)
            entries.append({"name": name, "spec": strategy.to_spec()})
        return {"strategies": entries}

    def _store_strategy(self, payload: dict) -> Tuple[int, dict]:
        if not isinstance(payload, dict):
            raise ServiceError("the strategy payload must be a JSON object", status=400)
        name = payload.get("name")
        spec = payload.get("spec")
        if not isinstance(name, str) or not name:
            raise ServiceError("stored strategies need a non-empty 'name'", status=400)
        if "(" in name or ")" in name:
            raise ServiceError(
                f"strategy names must not contain parentheses (got {name!r})",
                status=400,
            )
        if not isinstance(spec, str) or not spec:
            raise ServiceError("stored strategies need a 'spec' string", status=400)
        try:
            strategy = MatchStrategy.parse(spec, library=self._library).replaced(name=name)
        except ComaError as error:
            raise ServiceError(f"invalid strategy spec: {error}", status=400)
        with self._state_lock:
            replaced = name in self._strategies
            if self._repository is not None:
                replaced = replaced or self._repository.has_strategy(name)
                self._repository.store_strategy(name, strategy)
            self._strategies[name] = strategy
        return (200 if replaced else 201), {
            "name": name,
            "spec": strategy.to_spec(),
            "replaced": replaced,
        }

    def _strategy_details(self, name: str) -> dict:
        # A *stored-name* lookup only: resolve_strategy would happily parse a
        # spec-shaped name and answer 200 for something never stored.
        with self._state_lock:
            strategy = self._strategies.get(name)
        if strategy is None and self._repository is not None \
                and self._repository.has_strategy(name):
            strategy = self._repository.load_strategy(name, library=self._library)
            with self._state_lock:
                strategy = self._strategies.setdefault(name, strategy)
        if strategy is None:
            known = ", ".join(self.strategy_names()) or "none stored yet"
            raise ServiceError(
                f"no stored strategy named {name!r}; stored strategies: {known}",
                status=404,
            )
        return {"name": name, "spec": strategy.to_spec(), "document": strategy.to_dict()}

    def _delete_strategy(self, name: str) -> Tuple[int, dict]:
        with self._state_lock:
            removed = self._strategies.pop(name, None) is not None
            if self._repository is not None:
                removed = self._repository.delete_strategy(name) or removed
        if not removed:
            raise ServiceError(f"no stored strategy named {name!r}", status=404)
        return 200, {"deleted": name}


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP shell: JSON in, JSON out, everything else in MatchService."""

    server_version = f"coma-match-service/{__version__}"
    protocol_version = "HTTP/1.1"
    #: Headers and body go out as separate writes; without TCP_NODELAY the
    #: write-write-read pattern triggers Nagle + delayed-ACK stalls (~40ms
    #: per response) under concurrent load.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover - ops aid
            super().log_message(format, *args)

    def _read_payload(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        if length > MAX_BODY_BYTES:
            # Drain the oversized body first: responding with unread request
            # bytes on the socket desynchronizes the keep-alive connection
            # (the client is still sending and only sees a broken pipe).
            # Truly huge bodies are not worth draining -- close instead.
            if length <= 4 * MAX_BODY_BYTES:
                remaining = length
                while remaining > 0:
                    chunk = self.rfile.read(min(remaining, 1 << 20))
                    if not chunk:
                        break
                    remaining -= len(chunk)
            else:
                self.close_connection = True
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES} byte limit", status=413,
            )
        raw = self.rfile.read(length)
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(f"request body is not valid JSON: {error}", status=400)
        if not isinstance(decoded, dict):
            raise ServiceError("the request body must be a JSON object", status=400)
        return decoded

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_events(self, stream: JobEventStream) -> None:
        """Render a job event stream as a chunked NDJSON response.

        The handler thread blocks on the job's condition variable between
        events (no polling); a consumer that drops the connection mid-stream
        surfaces as a write error, which is reported to the job manager so
        ``cancel_on_disconnect`` jobs are cancelled and their next chunk
        never runs.  Event streams always close the connection when done --
        tailing responses have no meaningful keep-alive.
        """
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", stream.content_type)
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            while True:
                lines, finished = stream.tail(timeout=0.5)
                for line in lines:
                    self.wfile.write(b"%x\r\n" % len(line) + line + b"\r\n")
                if lines:
                    self.wfile.flush()
                if finished and stream.drained:
                    break
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError, OSError):
            stream.disconnected()

    def _handle(self, method: str) -> None:
        try:
            payload = self._read_payload()
            if method == "POST" and self.path.split("?")[0].rstrip("/") == "/shutdown":
                self._respond(200, {"status": "shutting down"})
                threading.Thread(target=self.server.shutdown, daemon=True).start()
                return
            status, response = self.server.service.handle_request(
                method, self.path, payload
            )
        except ServiceError as error:
            status, response = (error.status or 400, {"error": str(error), **error.details})
        except Exception as error:  # pragma: no cover - defensive 500 path
            status, response = (500, {"error": f"internal error: {error}"})
        if isinstance(response, JobEventStream):
            self._stream_events(response)
            return
        self._respond(status, response)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("DELETE")


class MatchServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`MatchService`."""

    daemon_threads = True
    allow_reuse_address = True
    #: The socketserver default backlog of 5 drops simultaneous connection
    #: bursts (the SYN retransmit shows up as ~1s latency outliers).
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: MatchService,
                 verbose: bool = False):
        super().__init__(address, _ServiceRequestHandler)
        self.service = service
        self.verbose = verbose

    def server_close(self) -> None:
        """Close the listening socket and the service's persistent resources.

        Every shutdown path funnels through here (``serve()``'s finally
        block, embedded ``create_server`` users, ``POST /shutdown``), so the
        similarity store is always flushed and its lifetime counters
        persisted; :meth:`MatchService.close` is idempotent.
        """
        super().server_close()
        self.service.close()

    @property
    def url(self) -> str:
        """The base URL clients should talk to."""
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def create_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    service: Optional[MatchService] = None,
    verbose: bool = False,
    **service_kwargs,
) -> MatchServiceServer:
    """Build a ready-to-serve :class:`MatchServiceServer`.

    Parameters
    ----------
    host / port:
        The bind address (pass ``port=0`` for an ephemeral port, handy in
        tests and benchmarks; read the chosen port off ``server.url``).
    service:
        An existing :class:`MatchService` to expose; by default a fresh one
        is built from ``service_kwargs`` (``pool_size``, ``repository_path``,
        ...).
    verbose:
        Log each request line to stderr (the default stays quiet).

    Returns
    -------
    MatchServiceServer
        Not yet serving: call ``serve_forever()`` (or run it on a thread).

    Examples
    --------
    >>> server = create_server(port=0, pool_size=1)
    >>> server.url.startswith("http://127.0.0.1:")
    True
    >>> server.server_close()
    """
    if service is None:
        service = MatchService(**service_kwargs)
    elif service_kwargs:
        raise ServiceError(
            f"pass either a service instance or service keyword arguments, "
            f"not both (got {sorted(service_kwargs)})"
        )
    return MatchServiceServer((host, port), service, verbose=verbose)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    verbose: bool = True,
    frontend: str = "sync",
    max_queue: Optional[int] = None,
    read_timeout: Optional[float] = None,
    **service_kwargs,
) -> None:
    """Run the match service until interrupted (the ``coma serve`` entry point).

    ``frontend`` selects the HTTP shell: ``"sync"`` (default) is the
    threading server in this module, ``"async"`` the single-threaded
    ``asyncio`` front-end (:mod:`repro.service.aserver`) with keep-alive +
    pipelining, bounded-queue backpressure (``max_queue`` admitted requests,
    429 beyond) and slow-client read timeouts (``read_timeout`` seconds).
    Matching semantics are identical either way -- both shells dispatch into
    the same :class:`MatchService`.
    """
    if frontend == "async":
        from repro.service.aserver import serve_async

        async_options = {}
        if max_queue is not None:
            async_options["max_queue"] = max_queue
        if read_timeout is not None:
            async_options["read_timeout"] = read_timeout
        serve_async(host=host, port=port, verbose=verbose,
                    **async_options, **service_kwargs)
        return
    if frontend != "sync":
        raise ServiceError(
            f"unknown service frontend {frontend!r}: choose 'sync' or 'async'"
        )
    if max_queue is not None or read_timeout is not None:
        raise ServiceError(
            "max_queue / read_timeout apply to the async front-end only "
            "(frontend='async')"
        )
    server = create_server(host=host, port=port, verbose=verbose, **service_kwargs)
    print(f"coma match service listening on {server.url} "
          f"(frontend=sync, backend={server.service.backend}, "
          f"workers={server.service.pool.size}); Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()  # also closes the service's persistent store
