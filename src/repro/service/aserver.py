"""The asyncio front-end: thousands of connections, one event loop.

The threading front-end (:mod:`repro.service.server`) spends one OS thread
per connection, so its concurrency ceiling is the thread scheduler -- warm
throughput *falls* as client counts rise, and a long-running request holds a
thread hostage for its whole duration.  This module replaces the transport
tier with a single-threaded ``asyncio`` server (stdlib only) while keeping
**every** matching semantic untouched:

* **Non-blocking accept/parse.**  An incremental HTTP/1.1 parser over
  ``asyncio`` streams: request heads are read with
  :meth:`~asyncio.StreamReader.readuntil`, bodies with
  :meth:`~asyncio.StreamReader.readexactly`, both under a read timeout so a
  slow-loris client (drip-feeding a request forever) is answered with 408
  and dropped instead of pinning resources.  Keep-alive is the default and
  *pipelined* requests are answered strictly in order -- the next request is
  parsed from the buffered stream as soon as the previous response is
  written.

* **Pool handoff.**  Requests are dispatched with
  ``loop.run_in_executor`` onto a small thread pool that calls the same
  transport-agnostic :meth:`MatchService.handle_request
  <repro.service.server.MatchService.handle_request>` the sync front-end
  uses; match execution still happens on the existing
  :class:`~repro.service.pool.SessionPool` /
  :class:`~repro.parallel.pool.ProcessSessionPool` shards, so responses are
  byte-identical across front-ends (locked down by
  ``tests/test_service_differential.py``).

* **Bounded queues with backpressure.**  At most ``max_queue`` requests may
  be admitted (executing or waiting for an executor thread) at once; the
  next request is answered ``429 Too Many Requests`` with a ``Retry-After``
  header *immediately* -- the event loop never queues unbounded work.
  During graceful drain every new request gets ``503`` + ``Connection:
  close`` while in-flight work runs to completion.

* **Streaming jobs.**  ``GET /jobs/<id>/events`` responses are chunked
  NDJSON tails of a background job's event log
  (:mod:`repro.service.jobs`); a subscriber disconnect is detected promptly
  (an EOF watcher on the connection's read side) and reported to the job
  manager, which cancels ``cancel_on_disconnect`` jobs so their next chunk
  never runs.

Run it with ``coma serve --frontend async`` (the sync front-end stays the
default until an operator opts in), embed it via :func:`create_async_server`
/ :meth:`AsyncMatchServiceServer.run_in_thread`, or drive a whole process
with :func:`serve_async`.  See ``docs/service.md`` ("Async front-end and the
jobs API") for the operator guide.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.exceptions import ServiceError
from repro.service.jobs import JobEventStream
from repro.service.server import MAX_BODY_BYTES, MatchService, __version__

#: Upper bound on one request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024
#: Default bound on admitted (executing + executor-queued) requests.
DEFAULT_MAX_QUEUE = 64
#: Default seconds a client may take to deliver a request head or body.
DEFAULT_READ_TIMEOUT = 30.0
#: Seconds the graceful shutdown waits for in-flight work before cutting.
DEFAULT_DRAIN_TIMEOUT = 30.0
#: Event-loop poll interval while tailing job events for a stream consumer.
_EVENT_POLL_SECONDS = 0.05

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 408: "Request Timeout",
    411: "Length Required", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _ConnectionClosed(Exception):
    """The client went away (EOF/reset) -- unwind the connection quietly."""


class _BadRequest(Exception):
    """An unparseable request; carries the (status, message) to answer with."""

    def __init__(self, status: int, message: str, close: bool = True):
        super().__init__(message)
        self.status = status
        self.close = close


class _ParsedRequest:
    """One parsed request: method, path, headers, decoded JSON payload."""

    __slots__ = ("method", "path", "headers", "payload", "keep_alive")

    def __init__(self, method: str, path: str, headers: Dict[str, str],
                 payload: Optional[dict], keep_alive: bool):
        self.method = method
        self.path = path
        self.headers = headers
        self.payload = payload
        self.keep_alive = keep_alive


class AsyncMatchServiceServer:
    """The asyncio HTTP shell around one :class:`MatchService`.

    Parameters
    ----------
    service:
        The transport-agnostic service core (shared vocabulary with the sync
        front-end: same endpoints, same bytes).
    host / port:
        The bind address (``port=0`` picks an ephemeral port; read the real
        one off :attr:`url` after :meth:`start`).
    max_queue:
        Backpressure bound: the maximum number of requests admitted at once
        (executing on the dispatch pool or waiting for a thread).  Request
        ``max_queue + 1`` is answered 429 with ``Retry-After`` immediately.
    executor_workers:
        Dispatch-pool threads (default: pool size + 2 -- enough to keep
        every worker shard busy plus cheap registry requests in flight).
    read_timeout:
        Seconds a client may take to deliver a request head or body before
        the connection is answered 408 and closed (the slow-loris guard).
        Also bounds how long an idle keep-alive connection is retained.
    verbose:
        Log request lines to stderr (default quiet; the CLI flips this).
    """

    def __init__(
        self,
        service: MatchService,
        host: str = "127.0.0.1",
        port: int = 8765,
        max_queue: int = DEFAULT_MAX_QUEUE,
        executor_workers: Optional[int] = None,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
        verbose: bool = False,
    ):
        if max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {max_queue}")
        if read_timeout <= 0:
            raise ServiceError(f"read_timeout must be > 0, got {read_timeout}")
        self.service = service
        self._host = host
        self._port = port
        self._max_queue = max_queue
        self._read_timeout = read_timeout
        self._verbose = verbose
        self._executor_workers = (
            executor_workers if executor_workers is not None
            else service.pool.size + 2
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._in_flight = 0
        self._rejected_429 = 0
        self._rejected_503 = 0
        self._requests_served = 0
        self._connections: set = set()
        self._draining = False
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        """The base URL clients should talk to (valid after :meth:`start`)."""
        return f"http://{self._host}:{self._port}"

    @property
    def port(self) -> int:
        """The bound port (the chosen one when constructed with ``port=0``)."""
        return self._port

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_workers,
            thread_name_prefix="coma-async-dispatch",
        )
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port, limit=MAX_HEAD_BYTES
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self.service.frontend_name = "async"
        self.service.frontend_stats = self.frontend_stats

    def frontend_stats(self) -> dict:
        """The ``/stats`` ``frontend`` block: queue occupancy and rejections."""
        return {
            "kind": "async",
            "in_flight": self._in_flight,
            "max_queue": self._max_queue,
            "queue_free": max(0, self._max_queue - self._in_flight),
            "connections": len(self._connections),
            "requests_served": self._requests_served,
            "rejected_429": self._rejected_429,
            "rejected_503": self._rejected_503,
            "draining": self._draining,
        }

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown from any thread (idempotent)."""
        loop, stop = self._loop, self._stop_event
        if loop is None or stop is None:
            return
        loop.call_soon_threadsafe(stop.set)

    async def close(self, drain_timeout: float = DEFAULT_DRAIN_TIMEOUT) -> None:
        """Graceful shutdown: drain in-flight work, then release everything.

        New connections are refused (listener closed) and requests arriving
        on live keep-alive connections are answered 503 while every already
        admitted request runs to completion (bounded by ``drain_timeout``);
        then the dispatch pool and the service's persistent resources are
        closed.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._connections if not task.done()}
        if pending:
            done, still_running = await asyncio.wait(pending, timeout=drain_timeout)
            for task in still_running:  # cut stragglers past the deadline
                task.cancel()
            if still_running:
                await asyncio.wait(still_running, timeout=1.0)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.service.frontend_stats == self.frontend_stats:
            self.service.frontend_stats = None
        self.service.close()

    async def serve_until_stopped(self) -> None:
        """Start, serve until :meth:`request_shutdown` (or POST /shutdown), drain."""
        await self.start()
        try:
            await self._stop_event.wait()
        finally:
            await self.close()

    def _run_blocking(self, started: threading.Event) -> None:
        async def main() -> None:
            try:
                await self.start()
            except BaseException as error:  # bind failures surface to the caller
                self._startup_error = error
                started.set()
                return
            started.set()
            try:
                await self._stop_event.wait()
            finally:
                await self.close()

        asyncio.run(main())

    def run_in_thread(self) -> threading.Thread:
        """Run the server on a daemon thread with its own event loop.

        Blocks until the listening socket is bound (so :attr:`url` is valid
        on return) and re-raises any startup failure -- e.g. address in use
        -- in the calling thread.  Stop it with :meth:`request_shutdown`
        (thread-safe) and join the returned thread.
        """
        started = threading.Event()
        thread = threading.Thread(
            target=self._run_blocking, args=(started,),
            name="coma-async-server", daemon=True,
        )
        thread.start()
        if not started.wait(timeout=30):  # pragma: no cover - hung loop guard
            raise ServiceError("the async server did not start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return thread

    # -- connection handling ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (_ConnectionClosed, ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        except Exception:  # pragma: no cover - defensive: never kill the loop
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await self._read_request(reader)
            except _BadRequest as bad:
                await self._write_json(
                    writer, bad.status, {"error": str(bad)}, keep_alive=not bad.close
                )
                if bad.close:
                    return
                continue
            if request is None:  # clean EOF between requests
                return
            keep_alive = await self._answer(reader, writer, request)
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_ParsedRequest]:
        """Incrementally parse one request off the stream (None on clean EOF).

        Raises :class:`_BadRequest` for malformed/oversized/timed-out input
        and :class:`_ConnectionClosed` when the client vanished mid-request.
        """
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self._read_timeout
            )
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # clean close between keep-alive requests
            raise _BadRequest(400, "truncated request head")
        except asyncio.LimitOverrunError:
            raise _BadRequest(
                431, f"request head exceeds the {MAX_HEAD_BYTES} byte limit"
            )
        except (asyncio.TimeoutError, TimeoutError):
            raise _BadRequest(
                408,
                f"request head not received within {self._read_timeout}s "
                f"(slow client or stalled request)",
            )
        try:
            head_text = head.decode("latin-1")
            request_line, *header_lines = head_text.split("\r\n")
            method, target, version = request_line.split(" ", 2)
        except ValueError:
            raise _BadRequest(400, "malformed HTTP request line")
        if not version.startswith("HTTP/1."):
            raise _BadRequest(400, f"unsupported protocol {version!r}")
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise _BadRequest(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        keep_alive = version != "HTTP/1.0"
        connection = headers.get("connection", "").lower()
        if "close" in connection:
            keep_alive = False
        elif "keep-alive" in connection:
            keep_alive = True
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _BadRequest(
                411, "chunked request bodies are not supported; send a "
                     "Content-Length"
            )
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError:
            raise _BadRequest(400, f"invalid Content-Length {raw_length!r}")
        payload: Optional[dict] = None
        if length > MAX_BODY_BYTES:
            # Mirror the sync front-end: drain moderately oversized bodies so
            # the 413 is readable on the keep-alive connection; truly huge
            # declarations are cut off instead of read.
            close = True
            if length <= 4 * MAX_BODY_BYTES:
                close = not await self._drain_body(reader, length)
            raise _BadRequest(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES} byte limit", close=close,
            )
        if length > 0:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self._read_timeout
                )
            except asyncio.IncompleteReadError:
                raise _ConnectionClosed()
            except (asyncio.TimeoutError, TimeoutError):
                raise _BadRequest(
                    408,
                    f"request body not received within {self._read_timeout}s "
                    f"(slow client or stalled request)",
                )
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise _BadRequest(
                    400, f"request body is not valid JSON: {error}", close=False
                )
            if not isinstance(decoded, dict):
                raise _BadRequest(
                    400, "the request body must be a JSON object", close=False
                )
            payload = decoded
        return _ParsedRequest(method.upper(), target, headers, payload, keep_alive)

    async def _drain_body(self, reader: asyncio.StreamReader, length: int) -> bool:
        """Read and discard ``length`` body bytes; False when the client quit."""
        remaining = length
        try:
            while remaining > 0:
                chunk = await asyncio.wait_for(
                    reader.read(min(remaining, 1 << 20)), self._read_timeout
                )
                if not chunk:
                    return False
                remaining -= len(chunk)
        except (asyncio.TimeoutError, TimeoutError):
            return False
        return True

    # -- dispatch --------------------------------------------------------------

    async def _answer(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: _ParsedRequest,
    ) -> bool:
        """Dispatch one parsed request and write its response.

        Returns whether the connection should be kept alive for the next
        (possibly already pipelined) request.
        """
        if self._verbose:  # pragma: no cover - ops aid
            print(f"{request.method} {request.path}", file=sys.stderr)
        bare_path = request.path.split("?")[0].rstrip("/")
        if request.method == "POST" and bare_path == "/shutdown":
            await self._write_json(
                writer, 200, {"status": "shutting down"}, keep_alive=False
            )
            self.request_shutdown()
            return False
        if self._draining:
            self._rejected_503 += 1
            await self._write_json(
                writer, 503,
                {"error": "the service is draining for shutdown"},
                keep_alive=False,
            )
            return False
        if self._in_flight >= self._max_queue:
            # Backpressure: reject *immediately* instead of queueing
            # unbounded work behind a saturated dispatch pool.
            self._rejected_429 += 1
            await self._write_json(
                writer, 429,
                {"error": f"the service is at capacity ({self._max_queue} "
                          f"requests admitted); retry shortly"},
                keep_alive=request.keep_alive,
                extra_headers={"Retry-After": "1"},
            )
            return request.keep_alive
        self._in_flight += 1
        try:
            status, response = await self._loop.run_in_executor(
                self._executor,
                self.service.handle_request,
                request.method, request.path, request.payload,
            )
        except Exception as error:  # pragma: no cover - defensive 500 path
            status, response = (500, {"error": f"internal error: {error}"})
        finally:
            self._in_flight -= 1
            self._requests_served += 1
        if isinstance(response, JobEventStream):
            await self._stream_events(reader, writer, response)
            return False  # event streams always close (tail semantics)
        await self._write_json(writer, status, response,
                               keep_alive=request.keep_alive)
        return request.keep_alive

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Server: coma-match-service/{__version__} (async)",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            raise _ConnectionClosed()

    # -- job event streaming ---------------------------------------------------

    async def _stream_events(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stream: JobEventStream,
    ) -> None:
        """Tail a job's event log to the client as chunked NDJSON.

        The loop polls the (thread-written) event log from the event loop --
        no executor thread is parked per subscriber -- and an EOF watcher on
        the connection's read side notices a dropped client promptly, even
        between events, so ``cancel_on_disconnect`` jobs stop before their
        next chunk is dispatched.
        """
        head = (
            f"HTTP/1.1 200 OK\r\n"
            f"Server: coma-match-service/{__version__} (async)\r\n"
            f"Content-Type: {stream.content_type}\r\n"
            f"Transfer-Encoding: chunked\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        eof_watch = asyncio.ensure_future(reader.read(1))
        try:
            while True:
                lines, finished = stream.poll()
                for line in lines:
                    writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
                if lines:
                    await writer.drain()
                if finished and stream.drained:
                    break
                if eof_watch.done() or writer.is_closing():
                    raise _ConnectionClosed()
                await asyncio.sleep(_EVENT_POLL_SECONDS)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (_ConnectionClosed, ConnectionResetError, BrokenPipeError, OSError):
            stream.disconnected()
        finally:
            eof_watch.cancel()


def create_async_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    service: Optional[MatchService] = None,
    verbose: bool = False,
    max_queue: int = DEFAULT_MAX_QUEUE,
    executor_workers: Optional[int] = None,
    read_timeout: float = DEFAULT_READ_TIMEOUT,
    **service_kwargs,
) -> AsyncMatchServiceServer:
    """Build a not-yet-started :class:`AsyncMatchServiceServer`.

    Mirrors :func:`repro.service.server.create_server`: pass an existing
    :class:`MatchService` or let one be built from ``service_kwargs``
    (``pool_size``, ``backend``, ``store_path``, ...).  Start it with
    :meth:`~AsyncMatchServiceServer.run_in_thread` (tests, embedding) or
    await :meth:`~AsyncMatchServiceServer.serve_until_stopped` on a loop you
    own.

    Examples
    --------
    >>> server = create_async_server(port=0, pool_size=1)
    >>> thread = server.run_in_thread()
    >>> server.url.startswith("http://127.0.0.1:")
    True
    >>> server.request_shutdown(); thread.join(timeout=10)
    """
    if service is None:
        service = MatchService(**service_kwargs)
    elif service_kwargs:
        raise ServiceError(
            f"pass either a service instance or service keyword arguments, "
            f"not both (got {sorted(service_kwargs)})"
        )
    return AsyncMatchServiceServer(
        service, host=host, port=port, max_queue=max_queue,
        executor_workers=executor_workers, read_timeout=read_timeout,
        verbose=verbose,
    )


def serve_async(
    host: str = "127.0.0.1",
    port: int = 8765,
    verbose: bool = True,
    max_queue: int = DEFAULT_MAX_QUEUE,
    executor_workers: Optional[int] = None,
    read_timeout: float = DEFAULT_READ_TIMEOUT,
    **service_kwargs,
) -> None:
    """Run the async front-end until interrupted (``coma serve --frontend async``)."""
    server = create_async_server(
        host=host, port=port, verbose=verbose, max_queue=max_queue,
        executor_workers=executor_workers, read_timeout=read_timeout,
        **service_kwargs,
    )

    async def main() -> None:
        await server.start()
        print(f"coma match service listening on {server.url} "
              f"(frontend=async, backend={server.service.backend}, "
              f"workers={server.service.pool.size}, "
              f"max_queue={max_queue}); Ctrl-C to stop")
        try:
            await server._stop_event.wait()
        finally:
            await server.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
