"""Background jobs: long-running match campaigns behind the service API.

Corpus-scale work -- a thousand-pair batch, a top-K search over a large
corpus -- takes minutes, and holding an HTTP connection (plus, on the sync
front-end, a server thread) open for the whole run does not survive real
networks.  The job subsystem turns those requests into *background campaigns*:

* ``POST /jobs`` validates the campaign up front (every invalid entry is
  reported with its index, like ``/match/batch``), registers a :class:`Job`
  and starts it on a worker thread -- the response is an immediate ``202``
  with the job id;
* the job thread splits the campaign into chunks and runs each chunk through
  the service's worker pool (thread or process backend alike), so a running
  job never holds a pool shard between chunks and a cancelled job releases
  its shard at the next chunk boundary;
* every state change appends a JSON **event** (``accepted`` -> ``progress``
  per chunk -> ``result`` | ``error`` | ``cancelled``) to the job's ordered
  event log.  ``GET /jobs/<id>/events`` replays the log and live-tails it as
  newline-delimited JSON (NDJSON); ``GET /jobs/<id>`` is the poll-style
  snapshot of the same state.

Events are deterministic -- sequence numbers and counts, no timestamps -- so
the same campaign streams byte-identical event lines from the sync and async
front-ends and across thread/process backends (the differential suite hashes
them).  Wall-clock timing lives only in the ``GET /jobs/<id>`` snapshot
(``duration_seconds``).

A job submitted with ``"cancel_on_disconnect": true`` is cancelled when the
client streaming its events disconnects mid-stream -- the fault-injection
suite asserts the worker shard is reaped back into the pool when that
happens.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.exceptions import ServiceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.server import MatchService

#: Default number of pairs matched per pool acquisition.
DEFAULT_CHUNK_SIZE = 8
#: Upper bound on the per-chunk size a submission may request.
MAX_CHUNK_SIZE = 1024
#: Finished jobs kept for status/event queries before eviction (FIFO).
MAX_FINISHED_JOBS = 64

#: Job lifecycle states.
JOB_STATES = ("running", "done", "error", "cancelled")


class Job:
    """One background campaign: state, progress counters and the event log.

    All mutation happens under one condition variable; readers take
    consistent snapshots (:meth:`status`, :meth:`events_after`) and blocking
    consumers wait on the condition (:meth:`wait_events`), so the sync
    front-end tails events without polling while the async front-end polls
    :meth:`events_after` from the event loop.
    """

    def __init__(self, job_id: str, kind: str, total: int, chunks: int,
                 cancel_on_disconnect: bool):
        self.id = job_id
        self.kind = kind
        self.total = total
        self.chunks = chunks
        self.cancel_on_disconnect = cancel_on_disconnect
        self.state = "running"
        self.done = 0
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self._events: List[dict] = []
        self._condition = threading.Condition()
        self._cancel = threading.Event()
        self._started = time.monotonic()
        self._finished_at: Optional[float] = None

    # -- event log -------------------------------------------------------------

    def publish(self, event: dict) -> None:
        """Append one event (stamped with its sequence number) and wake tails."""
        with self._condition:
            self._events.append({"seq": len(self._events), **event})
            self._condition.notify_all()

    def finish(self, state: str, *, result: Optional[dict] = None,
               error: Optional[str] = None) -> None:
        """Transition to a terminal state and publish the terminal event."""
        with self._condition:
            if self.state != "running":  # already terminal (e.g. cancel race)
                return
            self.state = state
            self.result = result
            self.error = error
            self._finished_at = time.monotonic()
        terminal = {"event": "cancelled" if state == "cancelled" else state,
                    "job": self.id, "done": self.done, "total": self.total}
        if state == "done":
            terminal = {"event": "result", "job": self.id, **(result or {})}
        elif state == "error":
            terminal = {"event": "error", "job": self.id, "error": error}
        self.publish(terminal)

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state != "running"

    def cancel(self) -> bool:
        """Request cancellation; True when the job was still running.

        The job thread honours the request at the next chunk boundary, so the
        pool shard working the current chunk is always released back to the
        free-list -- cancellation never leaks a shard.
        """
        with self._condition:
            running = self.state == "running"
        self._cancel.set()
        return running

    @property
    def cancelled(self) -> bool:
        """True when cancellation has been requested."""
        return self._cancel.is_set()

    def events_after(self, seq: int) -> Tuple[List[dict], bool]:
        """Events with sequence >= ``seq`` plus the current finished flag."""
        with self._condition:
            return list(self._events[seq:]), self.state != "running"

    def wait_events(self, seq: int, timeout: float = 1.0) -> Tuple[List[dict], bool]:
        """Block up to ``timeout`` for events past ``seq`` (sync tailing)."""
        with self._condition:
            if len(self._events) <= seq and self.state == "running":
                self._condition.wait(timeout)
            return list(self._events[seq:]), self.state != "running"

    def status(self, include_result: bool = True) -> dict:
        """The ``GET /jobs/<id>`` snapshot of this job."""
        with self._condition:
            payload = {
                "job": self.id,
                "kind": self.kind,
                "state": self.state,
                "done": self.done,
                "total": self.total,
                "chunks": self.chunks,
                "events": len(self._events),
                "cancel_on_disconnect": self.cancel_on_disconnect,
                "duration_seconds": round(
                    (self._finished_at or time.monotonic()) - self._started, 3
                ),
            }
            if self.error is not None:
                payload["error"] = self.error
            if include_result and self.result is not None:
                payload["result"] = self.result
            return payload


class JobManager:
    """The service's jobs table: submission, execution, streaming, eviction.

    One manager per :class:`~repro.service.server.MatchService`; jobs run on
    daemon worker threads and execute their chunks through the service's
    worker pool, so the thread and process backends serve jobs identically.
    """

    def __init__(self, service: "MatchService",
                 max_finished: int = MAX_FINISHED_JOBS):
        self._service = service
        self._max_finished = max_finished
        self._jobs: Dict[str, Job] = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._next_id = 0

    # -- registry --------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job registered under ``job_id`` (404 when unknown/evicted)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(
                f"no job named {job_id!r} (unknown id, or an old finished "
                f"job already evicted from the table)", status=404,
            )
        return job

    def jobs(self) -> List[Job]:
        """All registered jobs, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def info(self) -> dict:
        """The ``/stats`` summary: per-state counts plus the jobs table."""
        jobs = self.jobs()
        by_state = {state: 0 for state in JOB_STATES}
        for job in jobs:
            by_state[job.state] += 1
        return {
            "total": len(jobs),
            "by_state": by_state,
            "jobs": [job.status(include_result=False) for job in jobs],
        }

    def _evict_finished(self) -> None:
        # caller holds self._lock
        finished = [job_id for job_id, job in self._jobs.items() if job.finished]
        while len(finished) > self._max_finished:
            evicted = finished.pop(0)
            self._jobs.pop(evicted, None)
            self._threads.pop(evicted, None)

    # -- submission ------------------------------------------------------------

    def submit(self, payload: dict) -> Tuple[int, dict]:
        """Validate and start one campaign; the ``POST /jobs`` entry point.

        Returns ``(202, acceptance payload)``.  Validation is all-or-nothing
        and exhaustive: every invalid batch entry is reported with its index
        (the same contract as ``POST /match/batch``), and no job is
        registered unless the whole campaign resolved.
        """
        if not isinstance(payload, dict):
            raise ServiceError("the job payload must be a JSON object", status=400)
        kind = payload.get("kind", "batch")
        if kind not in ("batch", "search"):
            raise ServiceError(
                f"unknown job kind {kind!r}: choose 'batch' or 'search'",
                status=400,
            )
        chunk_size = payload.get("chunk_size", DEFAULT_CHUNK_SIZE)
        if not isinstance(chunk_size, int) or isinstance(chunk_size, bool) \
                or not 1 <= chunk_size <= MAX_CHUNK_SIZE:
            raise ServiceError(
                f"'chunk_size' must be an integer in [1, {MAX_CHUNK_SIZE}], "
                f"got {chunk_size!r}", status=400,
            )
        cancel_on_disconnect = bool(payload.get("cancel_on_disconnect", False))
        if kind == "batch":
            items, thresholds = self._service.resolve_batch(payload)
            total = len(items)
            chunks = (total + chunk_size - 1) // chunk_size
            runner_args = (items, thresholds, chunk_size)
        else:
            search_payload = self._service.validate_search(payload)
            total, chunks = 1, 1
            runner_args = (search_payload,)
        with self._lock:
            self._next_id += 1
            job_id = f"j{self._next_id}"
            job = Job(job_id, kind, total, chunks, cancel_on_disconnect)
            self._jobs[job_id] = job
            self._evict_finished()
            thread = threading.Thread(
                target=self._run, args=(job, kind, runner_args),
                name=f"coma-job-{job_id}", daemon=True,
            )
            self._threads[job_id] = thread
        job.publish({"event": "accepted", "job": job_id, "kind": kind,
                     "total": total, "chunks": chunks})
        thread.start()
        return 202, {"job": job_id, "state": "running", "kind": kind,
                     "total": total, "chunks": chunks}

    # -- execution -------------------------------------------------------------

    def _run(self, job: Job, kind: str, runner_args: tuple) -> None:
        try:
            if kind == "batch":
                self._run_batch(job, *runner_args)
            else:
                self._run_search(job, *runner_args)
        except Exception as error:  # noqa: BLE001 - job errors become events
            job.finish("error", error=str(error))

    def _run_batch(self, job: Job, items, thresholds, chunk_size: int) -> None:
        results: List[dict] = []
        for chunk_index in range(job.chunks):
            if job.cancelled:
                job.finish("cancelled")
                return
            start = chunk_index * chunk_size
            chunk = items[start:start + chunk_size]
            outcomes = self._service.pool.match_many(chunk)
            for outcome, threshold in zip(outcomes, thresholds[start:start + len(chunk)]):
                results.append(self._service.outcome_payload(outcome, threshold))
            job.done += len(chunk)
            job.publish({"event": "progress", "job": job.id, "done": job.done,
                         "total": job.total, "chunk": chunk_index + 1,
                         "chunks": job.chunks})
        job.finish("done", result={"count": len(results), "results": results})

    def _run_search(self, job: Job, payload: dict) -> None:
        if job.cancelled:
            job.finish("cancelled")
            return
        job.publish({"event": "progress", "job": job.id, "done": 0,
                     "total": 1, "chunk": 1, "chunks": 1})
        result = self._service.run_search(payload)
        job.done = 1
        if job.cancelled:
            job.finish("cancelled")
            return
        job.finish("done", result=result)

    # -- streaming and disconnects ---------------------------------------------

    def subscriber_disconnected(self, job: Job) -> bool:
        """A client streaming ``job``'s events dropped the connection.

        Cancels the job when it opted in via ``cancel_on_disconnect``;
        returns True when a cancellation was actually triggered.
        """
        if job.cancel_on_disconnect and not job.finished:
            return job.cancel()
        return False

    def close(self, timeout: float = 10.0) -> None:
        """Cancel every running job and wait briefly for the job threads."""
        for job in self.jobs():
            job.cancel()
        with self._lock:
            threads = list(self._threads.values())
        deadline = time.monotonic() + timeout
        for thread in threads:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))


class JobEventStream:
    """A streamed ``GET /jobs/<id>/events`` response body.

    The transport-agnostic :meth:`MatchService.handle_request
    <repro.service.server.MatchService.handle_request>` returns this object
    instead of a JSON dict for the events endpoint; each front-end renders it
    as chunked NDJSON its own way -- the sync handler blocks on
    :meth:`tail`, the async front-end polls :meth:`poll` from the event loop
    -- and reports a dropped consumer through :meth:`disconnected`.
    """

    content_type = "application/x-ndjson"

    def __init__(self, manager: JobManager, job: Job):
        self._manager = manager
        self.job = job
        self._seq = 0

    @staticmethod
    def encode(event: dict) -> bytes:
        """One NDJSON line for ``event`` (trailing newline included)."""
        return (json.dumps(event) + "\n").encode("utf-8")

    def poll(self) -> Tuple[List[bytes], bool]:
        """Encoded lines published since the last call + the finished flag."""
        events, finished = self.job.events_after(self._seq)
        self._seq += len(events)
        return [self.encode(event) for event in events], finished

    def tail(self, timeout: float = 1.0) -> Tuple[List[bytes], bool]:
        """Like :meth:`poll` but blocks up to ``timeout`` for the next event."""
        events, finished = self.job.wait_events(self._seq, timeout)
        self._seq += len(events)
        return [self.encode(event) for event in events], finished

    @property
    def drained(self) -> bool:
        """True once the terminal event has been handed out."""
        events, finished = self.job.events_after(self._seq)
        return finished and not events

    def disconnected(self) -> bool:
        """Report a consumer disconnect; True when it cancelled the job."""
        return self._manager.subscriber_disconnected(self.job)
