"""A stdlib-only client for the match service.

:class:`ServiceClient` wraps the JSON API of
:class:`~repro.service.server.MatchServiceServer` in typed convenience
methods (``urllib.request`` underneath, no third-party dependencies), so
programs talk to a remote matcher with the same vocabulary the in-process
:class:`~repro.session.session.MatchSession` uses::

    client = ServiceClient("http://127.0.0.1:8765")
    client.upload_schema(text=PO1_DDL, format="sql", name="PO1")
    client.upload_schema(text=PO2_XSD, format="xsd", name="PO2")
    client.save_strategy("tuned", "All(Max,Both,Thr(0.6),Dice)")
    result = client.match("PO1", "PO2", strategy="tuned")
    for row in result["correspondences"]:
        print(row["source"], "<->", row["target"], row["similarity"])

Failed requests raise :class:`~repro.exceptions.ServiceError` carrying the
HTTP status and the server's error message.
"""

from __future__ import annotations

import http.client
import json
import math
import socket
import threading
import time
import urllib.parse
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.exceptions import ServiceError

#: One batch entry: ``{"source": ..., "target": ..., "strategy": ...}``.
BatchRequest = Dict[str, Union[str, float, None]]

#: Fallback backoff for a 429 without a usable ``Retry-After`` header: the
#: first retry waits this many seconds, doubling per attempt.
RETRY_BACKOFF_BASE = 0.1
#: Upper bound on the doubling fallback's single retry wait.
RETRY_BACKOFF_CAP = 5.0
#: Upper bound on a wait taken from the server's ``Retry-After`` header.  A
#: header value is clamped into ``[0, MAX_RETRY_WAIT]``: negative values wait
#: nothing, and a server asking for a five-minute (or misconfigured
#: five-year) pause must not silently stall a client call that long.
MAX_RETRY_WAIT = 30.0


def _quoted(name: str) -> str:
    """Percent-encode a name used as a path segment (the server unquotes)."""
    return urllib.parse.quote(str(name), safe="")


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """An HTTPConnection with Nagle's algorithm disabled.

    The client writes headers and body as separate segments; with Nagle on,
    that write-write-read pattern interacts with delayed ACKs into ~40ms
    stalls per request under concurrent load.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class ServiceClient:
    """A convenience client for one match-service base URL.

    The client keeps one persistent (keep-alive) HTTP connection *per
    thread*, so request streams skip the TCP handshake and the instance can
    be shared across threads (each thread talks over its own connection).

    Parameters
    ----------
    base_url:
        The service root, e.g. ``"http://127.0.0.1:8765"`` (a trailing slash
        is tolerated).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        How many times a request answered ``429 Too Many Requests`` is
        retried (default 0: fail fast).  A 429 means the async front-end's
        bounded queue refused admission *before* any work started, so the
        replay is safe for every method, not just GET.  Each wait honours
        the server's ``Retry-After`` header, falling back to a deterministic
        doubling backoff (``RETRY_BACKOFF_BASE`` seconds, doubling per
        attempt); either way one wait never exceeds ``RETRY_BACKOFF_CAP``
        seconds.

    Raises
    ------
    ServiceError
        If ``base_url`` is not a plain http URL with a host.

    Examples
    --------
    >>> client = ServiceClient("http://127.0.0.1:8765/")
    >>> client.base_url
    'http://127.0.0.1:8765'
    """

    def __init__(self, base_url: str, timeout: float = 60.0, retries: int = 0):
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout
        self._retries = max(0, int(retries))
        parsed = urllib.parse.urlsplit(self._base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceError(
                f"the service client speaks plain http to a host:port base URL, "
                f"got {base_url!r}"
            )
        self._host = parsed.hostname
        self._port = parsed.port if parsed.port is not None else 80
        self._prefix = parsed.path.rstrip("/")
        self._local = threading.local()

    @property
    def base_url(self) -> str:
        """The normalised service root URL."""
        return self._base_url

    # -- transport -------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = _NoDelayHTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._local.connection = connection
        return connection

    def close(self) -> None:
        """Close the calling thread's persistent connection (if any)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    #: Transport failures that indicate the server dropped the connection
    #: between (or during) requests -- the signature of a *recycled
    #: keep-alive* connection, e.g. across a server restart.  Only these are
    #: retried, and only when it is safe: always for reused connections, and
    #: for *idempotent GETs* even on a fresh connection (a restarting server
    #: may reset the very first connection's request).  Non-GET requests on a
    #: fresh connection are never re-submitted, and neither is any timeout --
    #: a /match that timed out may still be computing server-side.
    _STALE_CONNECTION_ERRORS = (
        http.client.RemoteDisconnected,
        http.client.CannotSendRequest,
        ConnectionResetError,
        BrokenPipeError,
    )

    def request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        """Issue one JSON request and return the decoded response payload.

        The request rides the calling thread's keep-alive connection; a stale
        connection (e.g. after a server restart) is re-opened and the request
        retried once when that is safe -- always when the failed connection
        was a recycled keep-alive one, and additionally for idempotent GETs
        such as ``/health`` and ``/stats``, whose replay cannot duplicate
        work.  Timeouts are never retried.

        With ``retries > 0``, a ``429 Too Many Requests`` answer (the async
        front-end's bounded queue refusing admission -- the request was
        never started, so replay cannot duplicate work) is retried up to
        that many times, sleeping the server's ``Retry-After`` when it sent
        one and a deterministic doubling backoff otherwise, both capped at
        ``RETRY_BACKOFF_CAP`` seconds per wait.

        Raises
        ------
        ServiceError
            For non-2xx responses (with the server's error message and the
            HTTP status) and for transport-level failures (status 0).
        """
        for attempt in range(self._retries + 1):
            try:
                return self._request_once(method, path, payload)
            except ServiceError as error:
                if error.status != 429 or attempt >= self._retries:
                    raise
                time.sleep(self._retry_delay(error, attempt))
        raise AssertionError("unreachable: the loop returns or raises")

    def _retry_delay(self, error: ServiceError, attempt: int) -> float:
        """Seconds to wait before retry ``attempt + 1`` of a 429'd request.

        A parsable ``Retry-After`` is honoured but clamped into
        ``[0, MAX_RETRY_WAIT]`` -- a negative header waits nothing and an
        absurdly large (or infinite) one waits the cap at most.  Garbage
        (unparsable or NaN) headers fall back to the capped doubling
        backoff.
        """
        header = (error.details or {}).get("retry_after")
        if header is not None:
            try:
                advertised = float(header)
            except (TypeError, ValueError):
                advertised = None  # an unparsable Retry-After -> doubling
            if advertised is not None and not math.isnan(advertised):
                return min(MAX_RETRY_WAIT, max(0.0, advertised))
        return min(RETRY_BACKOFF_CAP, RETRY_BACKOFF_BASE * (2 ** attempt))

    def _request_once(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        target = f"{self._prefix}/{path.lstrip('/')}"
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        idempotent = method.upper() == "GET"
        for attempt in (1, 2):
            reused = getattr(self._local, "connection", None) is not None
            connection = self._connection()
            try:
                connection.request(method.upper(), target, body=body, headers=headers)
                response = connection.getresponse()
                # read() handles every framing the server may use: fixed
                # Content-Length, chunked transfer coding, and close-delimited
                # bodies -- no fixed-length assumption here.
                raw = response.read()
                if response.will_close:
                    # The server ended this connection (Connection: close);
                    # drop it so the next request opens a fresh one instead
                    # of tripping over a half-dead keep-alive socket.
                    self.close()
                break
            except TimeoutError as error:
                self.close()
                raise ServiceError(
                    f"{method} {path} timed out after {self._timeout}s (the "
                    f"server may still be processing it; not retrying)"
                ) from error
            except self._STALE_CONNECTION_ERRORS as error:
                self.close()
                if attempt == 2 or not (reused or idempotent):
                    raise ServiceError(
                        f"cannot reach the match service at {self._base_url}: {error}"
                    ) from error
            except (http.client.HTTPException, OSError) as error:
                self.close()
                raise ServiceError(
                    f"cannot reach the match service at {self._base_url}: {error}"
                ) from error
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"{method} {path} returned a non-JSON response "
                f"(status {response.status})", status=response.status,
            ) from error
        if response.status >= 400:
            message = decoded.get("error") if isinstance(decoded, dict) else None
            details = (
                {key: value for key, value in decoded.items() if key != "error"}
                if isinstance(decoded, dict) else {}
            )
            retry_after = response.getheader("Retry-After")
            if retry_after is not None and "retry_after" not in details:
                details["retry_after"] = retry_after
            raise ServiceError(
                message or f"{method} {path} failed with status {response.status}",
                status=response.status, details=details or None,
            )
        return decoded

    def stream(
        self, method: str, path: str, payload: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[dict]:
        """Issue one request and yield its NDJSON body line by line.

        Streaming responses (``GET /jobs/<id>/events``) have no
        ``Content-Length`` -- they arrive as chunked transfer coding and end
        when the server closes the stream.  Each decoded JSON line is yielded
        as it arrives.  The request rides a *dedicated* connection (never the
        pooled keep-alive one), so abandoning the generator mid-stream --
        ``break`` out of the loop, or let it be garbage collected -- simply
        closes that connection and cannot desynchronise later requests.

        Raises
        ------
        ServiceError
            For non-2xx responses and transport failures; a ``timeout``
            (defaults to the client timeout) elapsing between lines raises
            too, since a silent stream usually means a dead server.
        """
        target = f"{self._prefix}/{path.lstrip('/')}"
        body = None
        headers = {"Accept": "application/x-ndjson"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = _NoDelayHTTPConnection(
            self._host, self._port,
            timeout=timeout if timeout is not None else self._timeout,
        )
        try:
            try:
                connection.request(method.upper(), target, body=body, headers=headers)
                response = connection.getresponse()
            except (http.client.HTTPException, OSError) as error:
                raise ServiceError(
                    f"cannot reach the match service at {self._base_url}: {error}"
                ) from error
            if response.status >= 400:
                raw = response.read()
                try:
                    decoded = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    decoded = {}
                raise ServiceError(
                    decoded.get("error")
                    or f"{method} {path} failed with status {response.status}",
                    status=response.status,
                    details={k: v for k, v in decoded.items() if k != "error"},
                )
            while True:
                try:
                    line = response.readline()
                except (http.client.HTTPException, OSError) as error:
                    raise ServiceError(
                        f"{method} {path} stream broke mid-read: {error}"
                    ) from error
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    raise ServiceError(
                        f"{method} {path} streamed a non-JSON line: {error}"
                    ) from error
        finally:
            connection.close()

    # -- service endpoints -----------------------------------------------------

    def health(self) -> dict:
        """The ``GET /health`` payload (raises if the service is unreachable)."""
        return self.request("GET", "/health")

    def stats(self) -> dict:
        """The ``GET /stats`` payload: cache, pool and request statistics."""
        return self.request("GET", "/stats")

    def upload_schema(
        self,
        name: Optional[str] = None,
        text: Optional[str] = None,
        format: Optional[str] = None,  # noqa: A002 - mirrors the API field
        spec: Optional[dict] = None,
    ) -> dict:
        """Upload a schema (``POST /schemas``).

        Pass either ``text`` + ``format`` (any registered importer format:
        ``sql``, ``xsd``, ``dict``) or an inline dict ``spec``.
        Returns the registration summary (final name, path count,
        statistics).
        """
        payload: dict = {}
        if name is not None:
            payload["name"] = name
        if text is not None:
            payload["text"] = text
        if format is not None:
            payload["format"] = format
        if spec is not None:
            payload["spec"] = spec
        return self.request("POST", "/schemas", payload)

    def schemas(self) -> List[dict]:
        """The uploaded schemas (``GET /schemas``)."""
        return self.request("GET", "/schemas")["schemas"]

    def schema(self, name: str) -> dict:
        """Details of one uploaded schema (``GET /schemas/{name}``)."""
        return self.request("GET", f"/schemas/{_quoted(name)}")

    def delete_schema(self, name: str) -> dict:
        """Remove one uploaded schema (``DELETE /schemas/{name}``)."""
        return self.request("DELETE", f"/schemas/{_quoted(name)}")

    def match(
        self,
        source: str,
        target: str,
        strategy: Optional[str] = None,
        min_similarity: Optional[float] = None,
    ) -> dict:
        """Match two uploaded schemas (``POST /match``).

        ``strategy`` is a full spec string or a stored strategy name; the
        result carries the spec actually used, the schema similarity and the
        selected correspondences.
        """
        payload: dict = {"source": source, "target": target}
        if strategy is not None:
            payload["strategy"] = strategy
        if min_similarity is not None:
            payload["min_similarity"] = min_similarity
        return self.request("POST", "/match", payload)

    def rematch(
        self,
        old: str,
        new: str,
        target: str,
        strategy: Optional[str] = None,
        min_similarity: Optional[float] = None,
    ) -> dict:
        """Incrementally re-match an evolved schema (``POST /rematch``).

        ``old`` and ``new`` name two uploaded versions of the evolving
        schema, ``target`` the unchanged opposite schema.  The server splices
        the previous similarity cube where it can (the response's
        ``"rematch"`` block reports reused vs recomputed rows); the match
        payload itself is byte-identical to ``POST /match`` on
        ``(new, target)``.
        """
        payload: dict = {"old": old, "new": new, "target": target}
        if strategy is not None:
            payload["strategy"] = strategy
        if min_similarity is not None:
            payload["min_similarity"] = min_similarity
        return self.request("POST", "/rematch", payload)

    def match_batch(
        self,
        requests: Sequence[BatchRequest],
        strategy: Optional[str] = None,
        min_similarity: Optional[float] = None,
    ) -> List[dict]:
        """Match many pairs in one request (``POST /match/batch``).

        Each entry is ``{"source": ..., "target": ...}`` with optional
        per-entry ``"strategy"`` / ``"min_similarity"`` overriding the
        batch-level values.
        """
        payload: dict = {"requests": list(requests)}
        if strategy is not None:
            payload["strategy"] = strategy
        if min_similarity is not None:
            payload["min_similarity"] = min_similarity
        return self.request("POST", "/match/batch", payload)["results"]

    def search(
        self,
        source: str,
        k: int = 10,
        strategy: Optional[str] = None,
        candidates: Optional[int] = None,
        min_similarity: Optional[float] = None,
    ) -> dict:
        """Top-K corpus search for an uploaded schema (``POST /search``).

        Requires the service to run with a schema corpus
        (``coma serve --corpus``).  ``source`` is the name of an uploaded or
        corpus-registered schema; the response carries ranked results with
        per-candidate schema similarity, index score and correspondences.
        """
        payload: dict = {"source": source, "k": int(k)}
        if strategy is not None:
            payload["strategy"] = strategy
        if candidates is not None:
            payload["candidates"] = int(candidates)
        if min_similarity is not None:
            payload["min_similarity"] = min_similarity
        return self.request("POST", "/search", payload)

    def corpus_info(self) -> dict:
        """Schema-corpus occupancy and registered names (``GET /corpus``)."""
        return self.request("GET", "/corpus")

    # -- background jobs -------------------------------------------------------

    def submit_job(
        self,
        requests: Optional[Sequence[BatchRequest]] = None,
        kind: str = "batch",
        source: Optional[str] = None,
        k: Optional[int] = None,
        candidates: Optional[int] = None,
        strategy: Optional[str] = None,
        min_similarity: Optional[float] = None,
        chunk_size: Optional[int] = None,
        cancel_on_disconnect: Optional[bool] = None,
    ) -> dict:
        """Start a background campaign (``POST /jobs``); returns the 202 payload.

        ``kind="batch"`` takes the same ``requests`` list as
        :meth:`match_batch` but returns immediately with a job id -- follow
        it with :meth:`stream_job` (live NDJSON events) or :meth:`wait_job`
        (poll until terminal).  ``kind="search"`` takes ``source`` (and
        optionally ``k`` / ``candidates``) like :meth:`search`.
        ``cancel_on_disconnect=True`` asks the server to cancel the job when
        its event-stream consumer drops the connection.
        """
        payload: dict = {"kind": kind}
        if requests is not None:
            payload["requests"] = list(requests)
        if source is not None:
            payload["source"] = source
        if k is not None:
            payload["k"] = int(k)
        if candidates is not None:
            payload["candidates"] = int(candidates)
        if strategy is not None:
            payload["strategy"] = strategy
        if min_similarity is not None:
            payload["min_similarity"] = min_similarity
        if chunk_size is not None:
            payload["chunk_size"] = int(chunk_size)
        if cancel_on_disconnect is not None:
            payload["cancel_on_disconnect"] = bool(cancel_on_disconnect)
        return self.request("POST", "/jobs", payload)

    def jobs(self) -> dict:
        """The jobs table: per-state counts plus snapshots (``GET /jobs``)."""
        return self.request("GET", "/jobs")

    def job(self, job_id: str) -> dict:
        """One job's progress/result snapshot (``GET /jobs/{id}``)."""
        return self.request("GET", f"/jobs/{_quoted(job_id)}")

    def cancel_job(self, job_id: str) -> dict:
        """Cancel a running job (``DELETE /jobs/{id}``)."""
        return self.request("DELETE", f"/jobs/{_quoted(job_id)}")

    def stream_job(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[dict]:
        """Tail a job's events as they happen (``GET /jobs/{id}/events``).

        Yields each event dict (``accepted`` -> ``progress`` per chunk ->
        ``result`` | ``error`` | ``cancelled``); the stream ends after the
        terminal event.  Events published before the call are replayed
        first, so a late subscriber still sees the full history.
        """
        return self.stream(
            "GET", f"/jobs/{_quoted(job_id)}/events", timeout=timeout
        )

    def wait_job(
        self, job_id: str, poll_seconds: float = 0.2, timeout: float = 600.0
    ) -> dict:
        """Poll ``GET /jobs/{id}`` until the job reaches a terminal state.

        Returns the final snapshot (with ``result`` for completed jobs);
        raises :class:`~repro.exceptions.ServiceError` when ``timeout``
        elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] != "running":
                return snapshot
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id!r} still running after {timeout}s "
                    f"({snapshot['done']}/{snapshot['total']} done)"
                )
            time.sleep(poll_seconds)

    def save_strategy(self, name: str, spec: str) -> dict:
        """Store a named strategy spec (``POST /strategies``)."""
        return self.request("POST", "/strategies", {"name": name, "spec": spec})

    def strategies(self) -> List[dict]:
        """The stored named strategies (``GET /strategies``)."""
        return self.request("GET", "/strategies")["strategies"]

    def strategy(self, name: str) -> dict:
        """One stored strategy with its dict form (``GET /strategies/{name}``)."""
        return self.request("GET", f"/strategies/{_quoted(name)}")

    def delete_strategy(self, name: str) -> dict:
        """Delete a stored strategy (``DELETE /strategies/{name}``)."""
        return self.request("DELETE", f"/strategies/{_quoted(name)}")

    def shutdown(self) -> dict:
        """Ask the server to stop serving (``POST /shutdown``)."""
        return self.request("POST", "/shutdown", {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceClient({self._base_url!r})"
