"""Core match processing: strategies, the match operation and the iterative processor."""

from repro.core.match_operation import (
    MatchOutcome,
    build_context,
    combine_cube,
    execute_matchers,
    match,
    match_with_strategy,
    schema_similarity,
)
from repro.core.processor import MatchProcessor
from repro.core.strategy import MatchStrategy, default_strategy, single_matcher_strategy
from repro.matchers.simple.user_feedback import UserFeedbackStore

__all__ = [
    "MatchOutcome",
    "MatchProcessor",
    "MatchStrategy",
    "UserFeedbackStore",
    "build_context",
    "combine_cube",
    "default_strategy",
    "execute_matchers",
    "match",
    "match_with_strategy",
    "schema_similarity",
    "single_matcher_strategy",
]
