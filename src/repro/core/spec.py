"""The declarative strategy spec: one grammar for the *whole* match strategy.

COMA treats the match strategy -- the matchers to run plus the combination
4-tuple applied to their similarity cube -- as a first-class, storable object:
strategies live in the repository next to schemas and cubes, are addressable
from the CLI and configuration files, and are reported in the paper's own
compact notation.  This module defines that textual form and a parallel
dict/JSON form::

    spec     := matchers [ "(" combination ")" ]
    matchers := usage ("+" usage)*
    usage    := "All" | <library matcher name>
    combination := aggregation "," direction "," selection ["," combined]

Examples::

    All(Average,Both,Thr(0.5)+Delta(0.02),Average)   # the paper's default
    NamePath+Leaves(Max,Both,MaxN(1),Dice)
    All+SchemaM(Average,Both,Thr(0.5)+Delta(0.02),Average)
    Name                                             # default combination

``All`` expands to the five hybrid matchers of the evaluation
(:data:`~repro.matchers.registry.EVALUATION_HYBRID_MATCHERS`); the combination
part uses the grammar of
:func:`~repro.combination.strategy.combination_from_spec`.  Parsing and
serialisation round-trip: ``MatchStrategy.parse(strategy.to_spec())`` equals
``strategy`` for every strategy whose matchers are referenced by library name
(matcher *instances* serialise as their names and are re-created from the
library on parse).

The dict form additionally carries the fields the compact string omits
(``apply_feedback_overrides``, the display ``name``), making it the canonical
persistence format for :meth:`repro.repository.repository.Repository.store_strategy`.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.combination.strategy import (
    CombinationStrategy,
    aggregation_by_name,
    combination_from_spec,
    combined_similarity_by_name,
    default_combination,
    direction_by_name,
    parse_selection,
)
from repro.exceptions import StrategyError
from repro.matchers.registry import EVALUATION_HYBRID_MATCHERS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.strategy import MatchStrategy
    from repro.matchers.registry import MatcherLibrary

#: The matcher-usage alias expanding to the five evaluation hybrid matchers.
ALL_MATCHERS_LABEL = "All"


def matcher_label(names: Tuple[str, ...]) -> str:
    """The compact matcher-usage label of a matcher name tuple.

    The five hybrid matchers in evaluation order collapse to ``"All"`` (and
    ``"All+X"`` with one trailing extra matcher), mirroring the labels of the
    paper's Table 6 / Figure 12; anything else is the ``+``-joined name list.
    """
    hybrids = tuple(EVALUATION_HYBRID_MATCHERS)
    if names == hybrids:
        return ALL_MATCHERS_LABEL
    if len(names) == len(hybrids) + 1 and names[: len(hybrids)] == hybrids:
        return f"{ALL_MATCHERS_LABEL}+{names[-1]}"
    return "+".join(names)


def _expand_matcher_part(head: str, spec: str) -> List[str]:
    names: List[str] = []
    for token in head.split("+"):
        token = token.strip()
        if not token:
            raise StrategyError(f"empty matcher name in strategy spec {spec!r}")
        if token == ALL_MATCHERS_LABEL:
            names.extend(EVALUATION_HYBRID_MATCHERS)
        else:
            names.append(token)
    return names


def parse_strategy_spec(
    spec: str, library: Optional["MatcherLibrary"] = None
) -> "MatchStrategy":
    """Parse a full strategy spec into a :class:`~repro.core.strategy.MatchStrategy`.

    When ``library`` is given, every matcher name is validated against it up
    front (unknown names raise :class:`~repro.exceptions.StrategyError` at
    parse time rather than at the first :meth:`resolve_matchers` call).
    """
    from repro.core.strategy import MatchStrategy

    if not isinstance(spec, str) or not spec.strip():
        raise StrategyError(f"a strategy spec must be a non-empty string, got {spec!r}")
    text = spec.strip()
    opening = text.find("(")
    if opening >= 0:
        if not text.endswith(")"):
            raise StrategyError(f"unbalanced parentheses in strategy spec {spec!r}")
        head = text[:opening].strip()
        combination = combination_from_spec(text[opening + 1 : -1])
    else:
        head = text
        combination = default_combination()
    if not head:
        raise StrategyError(f"strategy spec {spec!r} names no matchers")
    names = _expand_matcher_part(head, spec)
    if library is not None:
        unknown = [name for name in names if name not in library]
        if unknown:
            raise StrategyError(
                f"unknown matchers {unknown} in strategy spec {spec!r}; "
                f"known matchers: {', '.join(library.names())}"
            )
    return MatchStrategy(
        matchers=names, combination=combination, name=matcher_label(tuple(names))
    )


def strategy_to_spec(strategy: "MatchStrategy") -> str:
    """Serialise a strategy to the compact spec form.

    Matcher instances contribute their ``name`` attribute, so a strategy
    carrying configured instances serialises to a spec that re-creates
    library-default instances on parse.
    """
    return f"{matcher_label(strategy.matcher_names())}({strategy.combination.to_spec()})"


def strategy_to_dict(strategy: "MatchStrategy") -> dict:
    """The dict/JSON form of a strategy (the repository's persistence format)."""
    combination = strategy.combination
    return {
        "name": strategy.name,
        "matchers": list(strategy.matcher_names()),
        "combination": {
            "aggregation": str(combination.aggregation),
            "direction": str(combination.direction),
            "selection": str(combination.selection),
            "combined_similarity": str(combination.combined_similarity),
        },
        "apply_feedback_overrides": bool(strategy.apply_feedback_overrides),
    }


def _combination_from_value(value: object, spec: object) -> CombinationStrategy:
    if value is None:
        return default_combination()
    if isinstance(value, CombinationStrategy):
        return value
    if isinstance(value, str):
        return combination_from_spec(value)
    if isinstance(value, Mapping):
        return CombinationStrategy(
            aggregation=aggregation_by_name(str(value.get("aggregation", "Average"))),
            direction=direction_by_name(str(value.get("direction", "Both"))),
            selection=parse_selection(str(value.get("selection", "Thr(0.5)+Delta(0.02)"))),
            combined_similarity=combined_similarity_by_name(
                str(value.get("combined_similarity", "Average"))
            ),
        )
    raise StrategyError(f"cannot interpret combination {value!r} in strategy dict {spec!r}")


def strategy_from_dict(
    data: Mapping, library: Optional["MatcherLibrary"] = None
) -> "MatchStrategy":
    """Rebuild a strategy from its dict/JSON form (inverse of :func:`strategy_to_dict`)."""
    from repro.core.strategy import MatchStrategy

    if not isinstance(data, Mapping):
        raise StrategyError(f"a strategy dict must be a mapping, got {data!r}")
    raw_matchers = data.get("matchers")
    if isinstance(raw_matchers, str):
        raise StrategyError(
            f"'matchers' must be a list of names, not the string {raw_matchers!r}; "
            f"use MatchStrategy.parse for the compact spec form"
        )
    if not raw_matchers or not all(isinstance(name, str) for name in raw_matchers):
        raise StrategyError(
            f"strategy dict must list matcher names under 'matchers', got {raw_matchers!r}"
        )
    names = list(raw_matchers)
    if library is not None:
        unknown = [name for name in names if name not in library]
        if unknown:
            raise StrategyError(f"unknown matchers {unknown} in strategy dict")
    return MatchStrategy(
        matchers=names,
        combination=_combination_from_value(data.get("combination"), data),
        apply_feedback_overrides=bool(data.get("apply_feedback_overrides", True)),
        name=str(data.get("name") or matcher_label(tuple(names))),
    )
