"""Iterative / interactive match processing (Section 3, Figure 2).

The :class:`MatchProcessor` drives one match task through one or more
iterations.  Each iteration consists of

1. an optional user-feedback phase (accepting / rejecting candidates proposed
   by the previous iteration, or asserting correspondences up front),
2. the execution of the configured matchers through the batch
   :class:`~repro.engine.engine.MatchEngine` (a different engine -- e.g. the
   pairwise reference, or a thread-pooled one -- can be injected),
3. the combination of the individual match results.

In *automatic* mode a single iteration with the default (or a supplied)
strategy is performed.  In *interactive* mode the caller inspects the proposed
candidates, records feedback through :meth:`accept` / :meth:`reject`, possibly
adjusts the strategy, and calls :meth:`run_iteration` again; accepted and
rejected pairs keep their maximal / minimal similarity in all later iterations
because the feedback store overrides the aggregated matrix.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.match_operation import MatchOutcome, build_context, match_with_strategy
from repro.matchers.base import MatchContext
from repro.core.strategy import MatchStrategy, default_strategy
from repro.engine.engine import MatchEngine
from repro.exceptions import ComaError
from repro.matchers.registry import MatcherLibrary
from repro.matchers.simple.user_feedback import UserFeedbackStore
from repro.model.mapping import Correspondence, MatchResult
from repro.model.path import SchemaPath
from repro.model.schema import Schema


class MatchProcessor:
    """Drives the iterative match process for one pair of schemas."""

    def __init__(
        self,
        source: Schema,
        target: Schema,
        strategy: Optional[MatchStrategy] = None,
        library: Optional[MatcherLibrary] = None,
        repository=None,
        synonyms=None,
        engine: Optional[MatchEngine] = None,
        feedback: Optional[UserFeedbackStore] = None,
        context: Optional[MatchContext] = None,
    ):
        """Set up the processor; ``feedback`` and ``context`` allow injection.

        A :class:`~repro.session.session.MatchSession` passes a pre-built
        context (sharing the session's caches) and the feedback store to use;
        standalone use keeps the historical behaviour of building both here.
        """
        self._source = source
        self._target = target
        self._strategy = strategy if strategy is not None else default_strategy()
        self._library = library
        self._engine = engine
        if context is not None and (
            context.source_schema is not source or context.target_schema is not target
        ):
            raise ComaError(
                "the injected context must be built over the processor's schema pair"
            )
        if feedback is not None:
            self._feedback = feedback
        elif context is not None and context.feedback is not None:
            self._feedback = context.feedback
        else:
            self._feedback = UserFeedbackStore()
        if context is None:
            context = build_context(
                source, target, synonyms=synonyms, feedback=self._feedback,
                repository=repository,
            )
        elif context.feedback is not self._feedback:
            # A non-mutating copy keeps the caller's context intact while the
            # processor records feedback in its own store; the profile cache
            # is carried over by reference.
            context = dataclasses.replace(context, feedback=self._feedback)
        self._context = context
        self._iterations: List[MatchOutcome] = []

    # -- configuration ----------------------------------------------------------------

    @property
    def strategy(self) -> MatchStrategy:
        """The strategy used by the next iteration."""
        return self._strategy

    def set_strategy(self, strategy: MatchStrategy) -> None:
        """Change the match strategy for subsequent iterations."""
        self._strategy = strategy

    @property
    def feedback(self) -> UserFeedbackStore:
        """The store of user-provided (mis-)match decisions."""
        return self._feedback

    # -- user feedback phase ---------------------------------------------------------------

    def accept(self, source: SchemaPath | str, target: SchemaPath | str) -> None:
        """Confirm a correspondence; it will be kept with similarity 1.0 from now on."""
        self._feedback.accept(self._resolve_source(source), self._resolve_target(target))

    def reject(self, source: SchemaPath | str, target: SchemaPath | str) -> None:
        """Reject a correspondence; it will be suppressed from now on."""
        self._feedback.reject(self._resolve_source(source), self._resolve_target(target))

    def accept_all(self, result: MatchResult) -> None:
        """Confirm every correspondence of ``result`` (e.g. after a manual review)."""
        for correspondence in result.correspondences:
            self._feedback.accept(correspondence.source, correspondence.target)

    def _resolve_source(self, path: SchemaPath | str) -> SchemaPath:
        return path if isinstance(path, SchemaPath) else self._source.find_path(path)

    def _resolve_target(self, path: SchemaPath | str) -> SchemaPath:
        return path if isinstance(path, SchemaPath) else self._target.find_path(path)

    # -- iterations -------------------------------------------------------------------------

    def run_iteration(self, strategy: Optional[MatchStrategy] = None) -> MatchOutcome:
        """Execute one match iteration and record its outcome."""
        if strategy is not None:
            self._strategy = strategy
        outcome = match_with_strategy(
            self._source,
            self._target,
            self._strategy,
            context=self._context,
            library=self._library,
            engine=self._engine,
        )
        self._iterations.append(outcome)
        return outcome

    run = run_iteration

    @property
    def iterations(self) -> List[MatchOutcome]:
        """Outcomes of all iterations run so far, in order."""
        return list(self._iterations)

    @property
    def last_outcome(self) -> MatchOutcome:
        """The outcome of the most recent iteration."""
        if not self._iterations:
            raise ComaError("no match iteration has been run yet")
        return self._iterations[-1]

    def current_result(self) -> MatchResult:
        """The latest proposed mapping with user feedback folded in.

        Accepted pairs are added with similarity 1.0 even if the matchers did
        not propose them; rejected pairs are removed.
        """
        result = MatchResult(self._source, self._target)
        if self._iterations:
            for correspondence in self.last_outcome.result.correspondences:
                if self._feedback.is_rejected(correspondence.source, correspondence.target):
                    continue
                result.add(correspondence)
        for source_str, target_str in self._feedback.accepted_pairs:
            try:
                source = self._source.find_path(source_str)
                target = self._target.find_path(target_str)
            except ComaError:
                continue
            result.add(Correspondence(source, target, 1.0))
        return result

    def pending_candidates(self) -> List[Correspondence]:
        """Proposed correspondences the user has not yet accepted or rejected."""
        if not self._iterations:
            return []
        pending = []
        for correspondence in self.last_outcome.result.correspondences:
            if self._feedback.decision(correspondence.source, correspondence.target) is None:
                pending.append(correspondence)
        return pending
