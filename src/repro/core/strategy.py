"""Match strategies: which matchers to run and how to combine their results.

A :class:`MatchStrategy` is the user-facing knob of COMA's automatic mode: it
names the matchers to execute (resolved through the matcher library) and the
:class:`~repro.combination.strategy.CombinationStrategy` applied to the
resulting similarity cube.  :func:`default_strategy` reproduces the paper's
default match operation -- the combination of all five hybrid matchers
(``All``) with ``(Average, Both, Threshold(0.5)+Delta(0.02))`` -- identified
as the most effective no-reuse configuration in Section 7.2.
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from repro.combination.strategy import CombinationStrategy, default_combination
from repro.exceptions import StrategyError
from repro.matchers.base import Matcher
from repro.matchers.registry import DEFAULT_LIBRARY, EVALUATION_HYBRID_MATCHERS, MatcherLibrary

#: A matcher reference: either an instance or a library name.
MatcherReference = Union[Matcher, str]


@dataclasses.dataclass
class MatchStrategy:
    """The configuration of one automatic match operation.

    A strategy has a declarative textual form (see :mod:`repro.core.spec`):
    :meth:`parse` builds a strategy from a spec such as
    ``"All(Average,Both,Thr(0.5)+Delta(0.02),Average)"`` and :meth:`to_spec`
    serialises it back; :meth:`to_dict` / :meth:`from_dict` provide the
    JSON-friendly form the repository persists named strategies in.
    """

    matchers: Sequence[MatcherReference] = dataclasses.field(
        default_factory=lambda: list(EVALUATION_HYBRID_MATCHERS)
    )
    combination: CombinationStrategy = dataclasses.field(default_factory=default_combination)
    #: Enforce user feedback (accepted -> 1.0, rejected -> 0.0) after aggregation.
    apply_feedback_overrides: bool = True
    #: Optional human-readable name shown in reports (a display label only:
    #: excluded from equality so parsed specs compare by behaviour).
    name: str = dataclasses.field(default="", compare=False)

    def resolve_matchers(self, library: Optional[MatcherLibrary] = None) -> List[Matcher]:
        """Instantiate all referenced matchers through ``library`` (default library)."""
        resolved: List[Matcher] = []
        registry = library if library is not None else DEFAULT_LIBRARY
        for reference in self.matchers:
            if isinstance(reference, Matcher):
                resolved.append(reference)
            elif isinstance(reference, str):
                resolved.append(registry.create(reference))
            else:
                raise StrategyError(
                    f"matcher references must be Matcher instances or names, got {reference!r}"
                )
        if not resolved:
            raise StrategyError("a match strategy must reference at least one matcher")
        return resolved

    def matcher_names(self) -> Tuple[str, ...]:
        """The names of the referenced matchers (for display and labelling)."""
        names = []
        for reference in self.matchers:
            names.append(reference.name if isinstance(reference, Matcher) else str(reference))
        return tuple(names)

    def describe(self) -> str:
        """A human-readable description of the strategy."""
        label = self.name or "+".join(self.matcher_names())
        return f"{label} with {self.combination.describe()}"

    def replaced(
        self,
        matchers: Optional[Sequence[MatcherReference]] = None,
        combination: Optional[CombinationStrategy] = None,
        name: Optional[str] = None,
        apply_feedback_overrides: Optional[bool] = None,
    ) -> "MatchStrategy":
        """A copy with some fields replaced."""
        return MatchStrategy(
            matchers=list(matchers) if matchers is not None else list(self.matchers),
            combination=combination if combination is not None else self.combination,
            apply_feedback_overrides=(
                self.apply_feedback_overrides
                if apply_feedback_overrides is None
                else bool(apply_feedback_overrides)
            ),
            name=name if name is not None else self.name,
        )

    # -- declarative spec / serialisation -------------------------------------

    @classmethod
    def parse(cls, spec: str, library: Optional[MatcherLibrary] = None) -> "MatchStrategy":
        """Parse a full strategy spec, e.g. ``"All(Average,Both,Thr(0.5)+Delta(0.02),Average)"``.

        See :mod:`repro.core.spec` for the grammar.  ``library`` (when given)
        validates matcher names at parse time.
        """
        from repro.core.spec import parse_strategy_spec

        return parse_strategy_spec(spec, library=library)

    def to_spec(self) -> str:
        """The compact spec form; round-trips through :meth:`parse`."""
        from repro.core.spec import strategy_to_spec

        return strategy_to_spec(self)

    def to_dict(self) -> dict:
        """The dict/JSON form (includes the fields the compact spec omits)."""
        from repro.core.spec import strategy_to_dict

        return strategy_to_dict(self)

    @classmethod
    def from_dict(
        cls, data: Mapping, library: Optional[MatcherLibrary] = None
    ) -> "MatchStrategy":
        """Rebuild a strategy from its dict/JSON form (inverse of :meth:`to_dict`)."""
        from repro.core.spec import strategy_from_dict

        return strategy_from_dict(data, library=library)


def default_strategy() -> MatchStrategy:
    """The paper's default match operation: ``All`` hybrid matchers, default combination."""
    return MatchStrategy(
        matchers=list(EVALUATION_HYBRID_MATCHERS),
        combination=default_combination(),
        name="All",
    )


def single_matcher_strategy(matcher: MatcherReference,
                            combination: Optional[CombinationStrategy] = None) -> MatchStrategy:
    """A strategy running one matcher with the default (or a given) combination."""
    name = matcher.name if isinstance(matcher, Matcher) else str(matcher)
    return MatchStrategy(
        matchers=[matcher],
        combination=combination if combination is not None else default_combination(),
        name=name,
    )
