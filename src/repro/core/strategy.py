"""Match strategies: which matchers to run and how to combine their results.

A :class:`MatchStrategy` is the user-facing knob of COMA's automatic mode: it
names the matchers to execute (resolved through the matcher library) and the
:class:`~repro.combination.strategy.CombinationStrategy` applied to the
resulting similarity cube.  :func:`default_strategy` reproduces the paper's
default match operation -- the combination of all five hybrid matchers
(``All``) with ``(Average, Both, Threshold(0.5)+Delta(0.02))`` -- identified
as the most effective no-reuse configuration in Section 7.2.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union

from repro.combination.strategy import CombinationStrategy, default_combination
from repro.exceptions import StrategyError
from repro.matchers.base import Matcher
from repro.matchers.registry import DEFAULT_LIBRARY, EVALUATION_HYBRID_MATCHERS, MatcherLibrary

#: A matcher reference: either an instance or a library name.
MatcherReference = Union[Matcher, str]


@dataclasses.dataclass
class MatchStrategy:
    """The configuration of one automatic match operation."""

    matchers: Sequence[MatcherReference] = dataclasses.field(
        default_factory=lambda: list(EVALUATION_HYBRID_MATCHERS)
    )
    combination: CombinationStrategy = dataclasses.field(default_factory=default_combination)
    #: Enforce user feedback (accepted -> 1.0, rejected -> 0.0) after aggregation.
    apply_feedback_overrides: bool = True
    #: Optional human-readable name shown in reports.
    name: str = ""

    def resolve_matchers(self, library: Optional[MatcherLibrary] = None) -> List[Matcher]:
        """Instantiate all referenced matchers through ``library`` (default library)."""
        resolved: List[Matcher] = []
        registry = library if library is not None else DEFAULT_LIBRARY
        for reference in self.matchers:
            if isinstance(reference, Matcher):
                resolved.append(reference)
            elif isinstance(reference, str):
                resolved.append(registry.create(reference))
            else:
                raise StrategyError(
                    f"matcher references must be Matcher instances or names, got {reference!r}"
                )
        if not resolved:
            raise StrategyError("a match strategy must reference at least one matcher")
        return resolved

    def matcher_names(self) -> Tuple[str, ...]:
        """The names of the referenced matchers (for display and labelling)."""
        names = []
        for reference in self.matchers:
            names.append(reference.name if isinstance(reference, Matcher) else str(reference))
        return tuple(names)

    def describe(self) -> str:
        """A human-readable description of the strategy."""
        label = self.name or "+".join(self.matcher_names())
        return f"{label} with {self.combination.describe()}"

    def replaced(
        self,
        matchers: Optional[Sequence[MatcherReference]] = None,
        combination: Optional[CombinationStrategy] = None,
        name: Optional[str] = None,
    ) -> "MatchStrategy":
        """A copy with some fields replaced."""
        return MatchStrategy(
            matchers=list(matchers) if matchers is not None else list(self.matchers),
            combination=combination if combination is not None else self.combination,
            apply_feedback_overrides=self.apply_feedback_overrides,
            name=name if name is not None else self.name,
        )


def default_strategy() -> MatchStrategy:
    """The paper's default match operation: ``All`` hybrid matchers, default combination."""
    return MatchStrategy(
        matchers=list(EVALUATION_HYBRID_MATCHERS),
        combination=default_combination(),
        name="All",
    )


def single_matcher_strategy(matcher: MatcherReference,
                            combination: Optional[CombinationStrategy] = None) -> MatchStrategy:
    """A strategy running one matcher with the default (or a given) combination."""
    name = matcher.name if isinstance(matcher, Matcher) else str(matcher)
    return MatchStrategy(
        matchers=[matcher],
        combination=combination if combination is not None else default_combination(),
        name=name,
    )
