"""The match operation: execute matchers, combine results, derive the mapping.

This module implements the per-iteration pipeline of Figure 2:

1. build the :class:`~repro.matchers.base.MatchContext`,
2. execute the selected matchers through the
   :class:`~repro.engine.engine.MatchEngine` (the vectorized batch pipeline by
   default; pass an engine with ``use_batch=False`` for the pairwise reference
   path), producing a :class:`~repro.combination.cube.SimilarityCube`,
3. aggregate the cube, apply user-feedback overrides, select match candidates
   with the configured direction and selection strategies,
4. assemble a :class:`~repro.model.mapping.MatchResult` and (optionally) the
   overall *schema similarity*.

The top-level convenience function :func:`match` is the library's primary
entry point: ``match(schema_a, schema_b)`` runs the paper's default strategy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.auxiliary.synonyms import SynonymDictionary, default_purchase_order_synonyms
from repro.combination.cube import SimilarityCube
from repro.combination.matrix import SimilarityMatrix
from repro.combination.strategy import CombinationStrategy
from repro.core.strategy import MatchStrategy, default_strategy
from repro.engine.engine import DEFAULT_ENGINE, MatchEngine
from repro.linguistic.tokenizer import NameTokenizer
from repro.matchers.base import MatchContext, Matcher
from repro.matchers.registry import MatcherLibrary
from repro.matchers.simple.user_feedback import UserFeedbackMatcher, UserFeedbackStore
from repro.model.datatypes import DEFAULT_TYPE_COMPATIBILITY, TypeCompatibilityTable
from repro.model.mapping import Correspondence, MatchResult
from repro.model.schema import Schema

try:  # pragma: no cover - the repository is optional at match time
    from repro.repository.repository import Repository
except Exception:  # pragma: no cover - defensive; repository has no heavy deps
    Repository = None  # type: ignore[assignment]


@dataclasses.dataclass
class MatchOutcome:
    """Everything produced by one match operation."""

    result: MatchResult
    cube: SimilarityCube
    aggregated: SimilarityMatrix
    schema_similarity: float
    strategy: MatchStrategy
    context: MatchContext

    @property
    def correspondences(self):
        """Shortcut to the correspondences of the final mapping."""
        return self.result.correspondences


def build_context(
    source: Schema,
    target: Schema,
    tokenizer: Optional[NameTokenizer] = None,
    synonyms: Optional[SynonymDictionary] = None,
    type_compatibility: Optional[TypeCompatibilityTable] = None,
    feedback: Optional[UserFeedbackStore] = None,
    repository: Optional["Repository"] = None,
    profile_cache: Optional[Dict[Tuple, object]] = None,
) -> MatchContext:
    """Assemble the match context shared by all matchers of one operation.

    ``profile_cache`` (when given) is used as the context's path-profile cache
    *by reference*: passing the same dict to several contexts shares the
    per-schema :class:`~repro.engine.profiles.PathSetProfile` objects across
    operations, which is how :class:`~repro.session.session.MatchSession`
    builds each schema's profile at most once per session.
    """
    context = MatchContext(
        source_schema=source,
        target_schema=target,
        tokenizer=tokenizer if tokenizer is not None else NameTokenizer(),
        synonyms=synonyms if synonyms is not None else default_purchase_order_synonyms(),
        type_compatibility=(
            type_compatibility
            if type_compatibility is not None
            # A fresh copy per context: one operation customising its table
            # must not leak into other operations sharing the default.
            else DEFAULT_TYPE_COMPATIBILITY.copy()
        ),
        feedback=feedback,
        repository=repository,
    )
    if profile_cache is not None:
        context.profile_cache = profile_cache
    return context


def execute_matchers(
    matchers: Sequence[Matcher],
    context: MatchContext,
    engine: Optional[MatchEngine] = None,
) -> SimilarityCube:
    """Run every matcher over all paths of the context's schemas, stacking the results.

    Execution goes through the batch :class:`~repro.engine.engine.MatchEngine`
    by default; pass ``MatchEngine(use_batch=False)`` for the pairwise
    reference implementation (the two produce numerically identical cubes).
    """
    active_engine = engine if engine is not None else DEFAULT_ENGINE
    return active_engine.execute(matchers, context)


def combine_cube(
    cube: SimilarityCube,
    combination: CombinationStrategy,
    context: MatchContext,
    apply_feedback_overrides: bool = True,
) -> tuple[MatchResult, SimilarityMatrix, float]:
    """Aggregate, apply feedback overrides, select candidates and build the mapping."""
    aggregated = combination.aggregate(cube)
    if apply_feedback_overrides and context.feedback:
        aggregated = UserFeedbackMatcher().apply_overrides(aggregated, context)
    selected = combination.select(aggregated)
    result = MatchResult(context.source_schema, context.target_schema)
    for source, target, similarity in selected:
        result.add(Correspondence(source, target, similarity))
    schema_similarity = combination.combine_pairs(
        selected, len(cube.source_paths), len(cube.target_paths)
    )
    return result, aggregated, schema_similarity


def match_with_strategy(
    source: Schema,
    target: Schema,
    strategy: MatchStrategy,
    context: Optional[MatchContext] = None,
    library: Optional[MatcherLibrary] = None,
    engine: Optional[MatchEngine] = None,
) -> MatchOutcome:
    """Run one automatic match operation with an explicit strategy."""
    active_context = context if context is not None else build_context(source, target)
    matchers = strategy.resolve_matchers(library)
    cube = execute_matchers(matchers, active_context, engine=engine)
    result, aggregated, schema_similarity = combine_cube(
        cube,
        strategy.combination,
        active_context,
        apply_feedback_overrides=strategy.apply_feedback_overrides,
    )
    return MatchOutcome(
        result=result,
        cube=cube,
        aggregated=aggregated,
        schema_similarity=schema_similarity,
        strategy=strategy,
        context=active_context,
    )


def match(
    source: Schema,
    target: Schema,
    matchers: Optional[Sequence] = None,
    combination: Optional[CombinationStrategy] = None,
    synonyms: Optional[SynonymDictionary] = None,
    feedback: Optional[UserFeedbackStore] = None,
    repository: Optional["Repository"] = None,
    library: Optional[MatcherLibrary] = None,
    engine: Optional[MatchEngine] = None,
) -> MatchOutcome:
    """Match two schemas with the default strategy (or selected overrides).

    This is the primary public entry point:

    >>> outcome = match(po1, po2)
    >>> for correspondence in outcome.result:
    ...     print(correspondence)
    """
    strategy = default_strategy()
    if matchers is not None:
        strategy = strategy.replaced(matchers=list(matchers), name="")
    if combination is not None:
        strategy = strategy.replaced(combination=combination)
    context = build_context(
        source, target, synonyms=synonyms, feedback=feedback, repository=repository
    )
    return match_with_strategy(
        source, target, strategy, context=context, library=library, engine=engine
    )


def schema_similarity(
    source: Schema,
    target: Schema,
    reference: Optional[MatchResult] = None,
    combination: Optional[CombinationStrategy] = None,
) -> float:
    """The Dice/Average schema similarity of two schemas (Section 6.3 / Figure 8).

    When ``reference`` is given (e.g. a manually derived mapping) the schema
    similarity is computed from it directly, as in Figure 8 where the ratio of
    matched paths to all paths is reported; otherwise the default automatic
    match is run first.
    """
    from repro.combination.combined import DICE_COMBINED

    source_count = len(source.paths())
    target_count = len(target.paths())
    if source_count + target_count == 0:
        return 0.0
    if reference is not None:
        pairs = [(c.source, c.target, c.similarity) for c in reference.correspondences]
        return DICE_COMBINED.combine(pairs, source_count, target_count) if pairs else 0.0
    outcome = match(source, target, combination=combination)
    return outcome.schema_similarity
