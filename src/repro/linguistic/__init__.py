"""Linguistic pre-processing: tokenization and abbreviation expansion."""

from repro.linguistic.abbreviations import AbbreviationTable, default_abbreviations
from repro.linguistic.tokenizer import DEFAULT_TOKENIZER, NameTokenizer, split_name

__all__ = [
    "AbbreviationTable",
    "DEFAULT_TOKENIZER",
    "NameTokenizer",
    "default_abbreviations",
    "split_name",
]
