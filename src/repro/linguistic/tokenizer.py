"""Name tokenization for the hybrid ``Name`` matcher.

The Name matcher (Section 4.2) performs pre-processing steps before applying
simple string matchers:

* *tokenization*: a name is split into its components, e.g.
  ``POShipTo -> {PO, Ship, To}``.  Splitting honours camelCase, PascalCase,
  digit boundaries and explicit delimiters (``_``, ``-``, ``.``, whitespace);
* *normalisation*: tokens are lower-cased and empty tokens dropped;
* *expansion*: abbreviations and acronyms are expanded
  (``PO -> {Purchase, Order}``), handled by
  :class:`~repro.linguistic.abbreviations.AbbreviationTable`.

Tokenization is deliberately deterministic and dependency-free.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.linguistic.abbreviations import AbbreviationTable, default_abbreviations

#: Explicit delimiters that separate tokens in element names.
_DELIMITERS = re.compile(r"[\s_\-./:#]+")

#: Boundary between a lowercase/digit character and an uppercase character
#: (camelCase boundary), and between an acronym and a following capitalised
#: word (e.g. ``POShipTo`` -> ``PO | Ship | To``).
_CAMEL_BOUNDARY = re.compile(
    r"""
    (?<=[a-z0-9])(?=[A-Z])          # fooBar -> foo | Bar
    | (?<=[A-Z])(?=[A-Z][a-z])      # POShip -> PO | Ship
    | (?<=[A-Za-z])(?=[0-9])        # addr1  -> addr | 1
    | (?<=[0-9])(?=[A-Za-z])        # 2nd    -> 2 | nd
    """,
    re.VERBOSE,
)


def split_name(name: str) -> List[str]:
    """Split a raw element name into case-preserving components.

    >>> split_name("POShipTo")
    ['PO', 'Ship', 'To']
    >>> split_name("ship_to_street")
    ['ship', 'to', 'street']
    """
    pieces: List[str] = []
    for chunk in _DELIMITERS.split(name):
        if not chunk:
            continue
        pieces.extend(p for p in _CAMEL_BOUNDARY.split(chunk) if p)
    return pieces


class NameTokenizer:
    """Tokenizes element names into normalised, abbreviation-expanded token lists."""

    def __init__(
        self,
        abbreviations: Optional[AbbreviationTable] = None,
        expand_abbreviations: bool = True,
        drop_digits: bool = False,
    ):
        self._abbreviations = abbreviations if abbreviations is not None else default_abbreviations()
        self._expand = expand_abbreviations
        self._drop_digits = drop_digits

    @property
    def abbreviations(self) -> AbbreviationTable:
        """The abbreviation table used for token expansion."""
        return self._abbreviations

    @property
    def expands_abbreviations(self) -> bool:
        """Whether abbreviation expansion is active (part of the config digest)."""
        return self._expand

    @property
    def drops_digits(self) -> bool:
        """Whether pure-digit tokens are dropped (part of the config digest)."""
        return self._drop_digits

    def tokenize(self, name: str) -> Tuple[str, ...]:
        """Tokenize a single name into lower-case tokens (abbreviations expanded)."""
        tokens: List[str] = []
        for raw in split_name(name):
            lowered = raw.lower()
            if self._drop_digits and lowered.isdigit():
                continue
            if self._expand:
                tokens.extend(self._abbreviations.expand(lowered))
            else:
                tokens.append(lowered)
        return tuple(tokens)

    def tokenize_path(self, names: Sequence[str] | Iterable[str]) -> Tuple[str, ...]:
        """Tokenize a whole path (a sequence of names), concatenating token lists.

        This is the representation used by the ``NamePath`` matcher: the long
        name built from all elements along a path contributes all its tokens.
        """
        tokens: List[str] = []
        for name in names:
            tokens.extend(self.tokenize(name))
        return tuple(tokens)

    def token_set(self, name: str) -> frozenset:
        """The set of distinct tokens of a name."""
        return frozenset(self.tokenize(name))


#: Shared default tokenizer instance (immutable configuration).
DEFAULT_TOKENIZER = NameTokenizer()
