"""Abbreviation and acronym expansion used during name tokenization.

The Name matcher "expands abbreviations and acronyms, e.g.
``PO -> {Purchase, Order}``" (Section 4.2).  The paper's evaluation used a
small hand-built file with trivial abbreviations such as ``No`` / ``Num``;
:func:`default_abbreviations` bundles an equivalent table for the purchase
order domain plus generic database abbreviations, and applications can supply
their own table or extend the default one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple


class AbbreviationTable:
    """A case-insensitive mapping from abbreviations to their expansion tokens."""

    def __init__(self, entries: Mapping[str, Iterable[str] | str] | None = None):
        self._entries: Dict[str, Tuple[str, ...]] = {}
        if entries:
            for abbreviation, expansion in entries.items():
                self.add(abbreviation, expansion)

    def add(self, abbreviation: str, expansion: Iterable[str] | str) -> None:
        """Register ``abbreviation`` to expand into one or more tokens."""
        key = abbreviation.strip().lower()
        if not key:
            raise ValueError("abbreviation must be a non-empty string")
        if isinstance(expansion, str):
            tokens: Tuple[str, ...] = (expansion.strip().lower(),)
        else:
            tokens = tuple(token.strip().lower() for token in expansion if token.strip())
        if not tokens:
            raise ValueError(f"expansion for {abbreviation!r} must contain at least one token")
        self._entries[key] = tokens

    def remove(self, abbreviation: str) -> bool:
        """Remove an abbreviation; returns True if it was present."""
        return self._entries.pop(abbreviation.strip().lower(), None) is not None

    def expand(self, token: str) -> Tuple[str, ...]:
        """Expand a (lower-case) token; unknown tokens are returned unchanged."""
        return self._entries.get(token.lower(), (token.lower(),))

    def knows(self, token: str) -> bool:
        """True if the table has an expansion for ``token``."""
        return token.lower() in self._entries

    def merged_with(self, other: "AbbreviationTable") -> "AbbreviationTable":
        """A new table combining both; entries of ``other`` win on conflict."""
        merged = AbbreviationTable()
        merged._entries.update(self._entries)
        merged._entries.update(other._entries)
        return merged

    def items(self) -> Iterable[Tuple[str, Tuple[str, ...]]]:
        """Iterate over ``(abbreviation, expansion tokens)`` pairs."""
        return self._entries.items()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, token: object) -> bool:
        return isinstance(token, str) and self.knows(token)


#: Generic + purchase-order-domain abbreviations, mirroring the paper's hand-built file.
_DEFAULT_ENTRIES: Dict[str, Tuple[str, ...]] = {
    # purchase-order domain acronyms
    "po": ("purchase", "order"),
    "qty": ("quantity",),
    "amt": ("amount",),
    "uom": ("unit", "of", "measure"),
    # trivial abbreviations (the paper explicitly mentions No / Num)
    "no": ("number",),
    "num": ("number",),
    "nr": ("number",),
    "cust": ("customer",),
    "addr": ("address",),
    "tel": ("telephone",),
    "phone": ("telephone",),
    "fax": ("facsimile",),
    "descr": ("description",),
    "desc": ("description",),
    "id": ("identifier",),
    "ident": ("identifier",),
    "ref": ("reference",),
    "acct": ("account",),
    "org": ("organization",),
    "co": ("company",),
    "st": ("state",),
    "str": ("street",),
    "ctry": ("country",),
    "tot": ("total",),
    "cnt": ("count",),
    "deliv": ("delivery",),
    "req": ("requested",),
    "zip": ("postal", "code"),
    "postcode": ("postal", "code"),
    "dob": ("date", "of", "birth"),
    "dt": ("date",),
    "ts": ("timestamp",),
    "min": ("minimum",),
    "max": ("maximum",),
    "avg": ("average",),
    "msg": ("message",),
    "info": ("information",),
    "pmt": ("payment",),
    "inv": ("invoice",),
    "curr": ("currency",),
}


def default_abbreviations() -> AbbreviationTable:
    """The default abbreviation table (a fresh, independently mutable copy)."""
    return AbbreviationTable(_DEFAULT_ENTRIES)
