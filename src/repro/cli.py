"""Command-line interface: match schema files through a :class:`MatchSession`.

Usage examples::

    coma match po1.sql po2.xsd
    coma match a.xsd b.xsd --strategy "All(Average,Both,Thr(0.5)+Delta(0.02),Average)"
    coma match a.xsd b.xsd --matchers NamePath Leaves --selection "Thr(0.5)+Delta(0.02)"
    coma match a.xsd b.xsd --repository coma.db --strategy tuned   # stored by name
    coma rematch po1_v1.xsd po1_v2.xsd po2.xsd   # incremental re-match: splice
                                                 # unchanged rows of the previous result
    coma rematch old.xsd new.xsd b.xsd --store coma-store.db  # splice across restarts
    coma strategies                       # list the matcher library
    coma strategies --repository coma.db  # ... plus the stored named strategies
    coma strategies --repository coma.db --save tuned "All(Max,Both,Thr(0.6),Dice)"
    coma stats po.xsd
    coma stats --store coma-store.db      # persistent-reuse effectiveness counters
    coma corpus corpus.db add schemas/*.xsd   # register schemas into a search corpus
    coma corpus corpus.db list                # ... list / info / remove NAME
    coma search query.xsd --corpus corpus.db -k 10   # top-K corpus search
    coma tasks            # list the bundled evaluation tasks and their sizes
    coma serve --port 8765 --workers 4    # the HTTP match service (docs/service.md)
    coma serve --backend process --workers 4  # worker processes: warm throughput
                                              # scales with the cores, not the GIL
    coma serve --store coma-store.db      # ... warm across restarts (persistent reuse)
    coma serve --store coma-store.db --store-dtype uint16  # quantized cube storage

The CLI is intentionally thin: everything it does is a few calls into the
session-based public API, so it doubles as a usage example.  ``--strategy``
accepts the full declarative spec grammar of :mod:`repro.core.spec` -- or,
when a repository is attached, the name of a stored strategy.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.combination.strategy import parse_combination
from repro.core.strategy import MatchStrategy, default_strategy
from repro.datasets.gold_standard import load_all_tasks
from repro.evaluation.report import format_table
from repro.exceptions import ComaError
from repro.importers.registry import DEFAULT_IMPORTERS
from repro.session import MatchSession


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coma",
        description="COMA schema matching (Do & Rahm, VLDB 2002) - reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    match_parser = subparsers.add_parser("match", help="match two schema files")
    match_parser.add_argument("source", help="source schema file (.sql, .xsd, .json)")
    match_parser.add_argument("target", help="target schema file (.sql, .xsd, .json)")
    match_parser.add_argument(
        "--strategy", default=None,
        help='full strategy spec, e.g. "All(Average,Both,Thr(0.5)+Delta(0.02),Average)", '
             "or the name of a strategy stored in the repository",
    )
    match_parser.add_argument(
        "--matchers", nargs="+", default=None,
        help="matcher names from the library (default: the five hybrid matchers)",
    )
    # The per-part combination flags default to None so an explicitly passed
    # value is distinguishable from "not given" (--strategy conflicts with any
    # explicitly given part); the effective defaults live in _resolve_cli_strategy.
    match_parser.add_argument("--aggregation", default=None,
                              help="aggregation strategy: Max, Min or Average (default Average)")
    match_parser.add_argument("--direction", default=None,
                              help="direction strategy: Both, LargeSmall or SmallLarge (default Both)")
    match_parser.add_argument("--selection", default=None,
                              help='selection strategy, e.g. "MaxN(1)" '
                                   '(default "Thr(0.5)+Delta(0.02)")')
    match_parser.add_argument("--min-similarity", type=float, default=0.0,
                              help="only print correspondences at or above this similarity")
    match_parser.add_argument("--repository", default=None,
                              help="SQLite repository file (stored strategies, reuse matchers)")

    rematch_parser = subparsers.add_parser(
        "rematch",
        help="incrementally re-match an evolved schema against a fixed target, "
             "splicing unchanged rows from the previous result",
    )
    rematch_parser.add_argument("old", help="previous schema version (.sql, .xsd, .json)")
    rematch_parser.add_argument("new", help="evolved schema version (.sql, .xsd, .json)")
    rematch_parser.add_argument("target", help="fixed target schema file (.sql, .xsd, .json)")
    rematch_parser.add_argument(
        "--strategy", default=None,
        help='full strategy spec, e.g. "All(Average,Both,Thr(0.5)+Delta(0.02),Average)", '
             "or the name of a strategy stored in the repository",
    )
    rematch_parser.add_argument(
        "--matchers", nargs="+", default=None,
        help="matcher names from the library (default: the five hybrid matchers)",
    )
    rematch_parser.add_argument("--aggregation", default=None,
                                help="aggregation strategy: Max, Min or Average (default Average)")
    rematch_parser.add_argument("--direction", default=None,
                                help="direction strategy: Both, LargeSmall or SmallLarge (default Both)")
    rematch_parser.add_argument("--selection", default=None,
                                help='selection strategy, e.g. "MaxN(1)" '
                                     '(default "Thr(0.5)+Delta(0.02)")')
    rematch_parser.add_argument("--min-similarity", type=float, default=0.0,
                                help="only print correspondences at or above this similarity")
    rematch_parser.add_argument("--repository", default=None,
                                help="SQLite repository file (stored strategies, reuse matchers)")
    rematch_parser.add_argument("--store", default=None,
                                help="persistent similarity store: the previous "
                                     "(old, target) cube is loaded from here instead "
                                     "of being recomputed, so a fresh process can "
                                     "still splice")

    strategies_parser = subparsers.add_parser(
        "strategies", help="list the matcher library and the stored named strategies"
    )
    strategies_parser.add_argument("--repository", default=None,
                                   help="SQLite repository file with stored strategies")
    strategies_parser.add_argument(
        "--save", nargs=2, metavar=("NAME", "SPEC"), default=None,
        help="store a named strategy spec in the repository (requires --repository)",
    )

    stats_parser = subparsers.add_parser(
        "stats",
        help="print the Table 5 statistics of a schema file, or -- with "
             "--store -- the reuse effectiveness of a persistent similarity store",
    )
    stats_parser.add_argument("schema", nargs="?", default=None,
                              help="schema file (.sql, .xsd, .json)")
    stats_parser.add_argument("--store", default=None,
                              help="persistent similarity store file: print its "
                                   "occupancy and lifetime hit/miss counters")

    corpus_parser = subparsers.add_parser(
        "corpus",
        help="manage a schema search corpus (see docs/search.md)",
    )
    corpus_parser.add_argument("corpus", help="corpus SQLite file")
    corpus_parser.add_argument(
        "action", choices=("add", "remove", "list", "info"),
        help="add schema files, remove a registered name, list names, "
             "or print occupancy statistics",
    )
    corpus_parser.add_argument(
        "items", nargs="*",
        help="schema files for 'add', registered names for 'remove'",
    )

    search_parser = subparsers.add_parser(
        "search",
        help="find the best match targets for a schema in a corpus "
             "(see docs/search.md)",
    )
    search_parser.add_argument("query", help="query schema file (.sql, .xsd, .json)")
    search_parser.add_argument("--corpus", required=True,
                               help="corpus SQLite file built with `coma corpus add`")
    search_parser.add_argument("-k", type=int, default=10,
                               help="number of ranked results (default 10)")
    search_parser.add_argument("--candidates", type=int, default=None,
                               help="survivor-pool size the full pipeline runs on "
                                    "(default max(4*k, 16))")
    search_parser.add_argument("--strategy", default=None,
                               help="full strategy spec for the survivor matches "
                                    "(default: the paper's default operation)")
    search_parser.add_argument("--min-similarity", type=float, default=0.0,
                               help="only print correspondences at or above this "
                                    "similarity in the per-result detail")
    search_parser.add_argument("--processes", type=int, default=None,
                               help="fan survivor matching out over this many "
                                    "worker processes")
    search_parser.add_argument("--details", action="store_true",
                               help="also print each result's correspondences")

    subparsers.add_parser("tasks", help="list the bundled evaluation tasks (Figure 8 data)")

    serve_parser = subparsers.add_parser(
        "serve", help="run the HTTP match service (see docs/service.md)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8765,
                              help="bind port (default 8765; 0 picks an ephemeral port)")
    serve_parser.add_argument("--workers", type=int, default=None,
                              help="number of warm workers: pooled sessions for "
                                   "--backend thread, worker processes for "
                                   "--backend process (default 4)")
    serve_parser.add_argument("--backend", default="thread",
                              help="execution backend: 'thread' (one process, "
                                   "pooled sessions) or 'process' (spawned worker "
                                   "processes; warm throughput scales with the "
                                   "cores instead of the GIL)")
    serve_parser.add_argument("--pool-size", type=int, default=None,
                              help="deprecated alias for --workers")
    serve_parser.add_argument("--repository", default=None,
                              help="SQLite repository shared by all worker sessions "
                                   "(stored strategies, reuse matchers)")
    serve_parser.add_argument("--store", default=None,
                              help="persistent similarity store shared by all worker "
                                   "sessions: a restarted service stays warm across "
                                   "processes (see docs/service.md)")
    serve_parser.add_argument("--store-dtype", default=None,
                              choices=("float64", "float32", "uint16"),
                              help="storage dtype for cubes the store writes: "
                                   "float64 (default; bit-identical round trips), "
                                   "float32, or quantized uint16 (quarter the "
                                   "bytes at a ~1e-5 tolerance); requires --store")
    serve_parser.add_argument("--corpus", default=None,
                              help="schema corpus file enabling POST /search and "
                                   "GET /corpus; uploaded schemas are indexed "
                                   "automatically (see docs/search.md)")
    serve_parser.add_argument("--frontend", default="sync",
                              help="HTTP front-end: 'sync' (thread per "
                                   "connection; default) or 'async' (one asyncio "
                                   "event loop multiplexing every connection, "
                                   "with keep-alive, pipelining and bounded "
                                   "backpressure)")
    serve_parser.add_argument("--max-queue", type=int, default=None,
                              help="async front-end only: admit at most this many "
                                   "in-flight requests before answering 429 "
                                   "(default 64)")
    serve_parser.add_argument("--read-timeout", type=float, default=None,
                              help="async front-end only: seconds a client may "
                                   "take to deliver a request before a 408 "
                                   "(default 30)")
    serve_parser.add_argument("--quiet", action="store_true",
                              help="do not log request lines to stderr")
    serve_parser.add_argument("--fault-plan", default=None,
                              help="JSON fault plan armed for the whole service "
                                   "(chaos runs; see docs/robustness.md). "
                                   "Refused unless COMA_ENABLE_FAULTS=1 is set "
                                   "in the environment")
    return parser


def _open_session(repository_path: Optional[str]) -> MatchSession:
    """A session over the default resources, with a repository when requested."""
    repository = None
    if repository_path:
        from repro.repository.repository import Repository

        repository = Repository(repository_path)
    return MatchSession(repository=repository)


def _resolve_cli_strategy(session: MatchSession, arguments: argparse.Namespace) -> MatchStrategy:
    per_part_flags = ("aggregation", "direction", "selection")
    if arguments.strategy is not None:
        if arguments.matchers is not None:
            raise ComaError("--strategy and --matchers are mutually exclusive; "
                            "name the matchers inside the strategy spec")
        # A --strategy spec carries the whole combination, so any explicitly
        # given per-part flag is a conflict rather than silently ignored.
        given = [f"--{flag}" for flag in per_part_flags
                 if getattr(arguments, flag) is not None]
        if given:
            raise ComaError(
                f"--strategy conflicts with {', '.join(given)}; "
                "put the combination inside the strategy spec instead"
            )
        try:
            return session.resolve_strategy(arguments.strategy)
        except ComaError as error:
            if "(" in arguments.strategy:
                raise  # a spec string: the parse error is the useful message
            # A bare name that is neither stored nor a known matcher: point at
            # the stored-strategy listing instead of the raw lookup error.
            stored = session.strategy_names()
            listing = (
                f"stored strategies: {', '.join(stored)}"
                if stored
                else "no strategies are stored"
                + ("" if arguments.repository else " (no --repository given)")
            )
            raise ComaError(
                f"unknown strategy {arguments.strategy!r}: not a stored strategy "
                f"name or matcher spec; {listing} -- run `coma strategies"
                + (f" --repository {arguments.repository}" if arguments.repository else "")
                + "` to list them, or pass a full spec such as "
                '"All(Average,Both,Thr(0.5)+Delta(0.02),Average)"'
            ) from error
    combination = parse_combination(
        aggregation=arguments.aggregation or "Average",
        direction=arguments.direction or "Both",
        selection=arguments.selection or "Thr(0.5)+Delta(0.02)",
    )
    strategy = default_strategy().replaced(combination=combination)
    if arguments.matchers is not None:
        strategy = strategy.replaced(matchers=list(arguments.matchers), name="")
    return strategy


def _command_match(arguments: argparse.Namespace) -> int:
    session = _open_session(arguments.repository)
    source = DEFAULT_IMPORTERS.import_file(arguments.source)
    target = DEFAULT_IMPORTERS.import_file(arguments.target)
    strategy = _resolve_cli_strategy(session, arguments)
    outcome = session.match(source, target, strategy=strategy)
    rows = [
        {
            "source": correspondence.source.dotted(),
            "target": correspondence.target.dotted(),
            "similarity": correspondence.similarity,
        }
        for correspondence in outcome.result
        if correspondence.similarity >= arguments.min_similarity
    ]
    print(format_table(rows, title=f"Mapping {source.name} <-> {target.name}"))
    print(f"\nstrategy:          {outcome.strategy.to_spec()}")
    print(f"schema similarity: {outcome.schema_similarity:.3f}")
    print(f"correspondences:   {len(rows)}")
    return 0


def _command_rematch(arguments: argparse.Namespace) -> int:
    """Incremental re-match: splice the evolved schema against a previous result.

    Without ``--store`` the previous (old, target) result is computed in the
    same process, so the splice reads it from the session's cube cache.  With
    ``--store`` the previous cube is recovered from the persistent store by
    content digest -- the path a restarted process takes -- and the command
    falls back to a full match (reported as such) when the store has no
    matching artifact.
    """
    repository = None
    if arguments.repository:
        from repro.repository.repository import Repository

        repository = Repository(arguments.repository)
    with MatchSession(repository=repository, store=arguments.store) as session:
        old = DEFAULT_IMPORTERS.import_file(arguments.old)
        new = DEFAULT_IMPORTERS.import_file(arguments.new)
        target = DEFAULT_IMPORTERS.import_file(arguments.target)
        strategy = _resolve_cli_strategy(session, arguments)
        previous = None
        if not arguments.store:
            # No persistent store: establish the previous result in-process so
            # the splice has something to reuse (it lands in the cube cache).
            previous = session.match(old, target, strategy=strategy)
        before = session.cache_info()
        outcome = session.rematch(
            old, new, previous_result=previous, target=target, strategy=strategy
        )
        after = session.cache_info()
        rows = [
            {
                "source": correspondence.source.dotted(),
                "target": correspondence.target.dotted(),
                "similarity": correspondence.similarity,
            }
            for correspondence in outcome.result
            if correspondence.similarity >= arguments.min_similarity
        ]
        print(format_table(rows, title=f"Mapping {new.name} <-> {target.name}"))
        from repro.model.digests import schema_delta

        delta = schema_delta(old, new)
        spliced = after["rematch_spliced"] > before["rematch_spliced"]
        print(f"\nstrategy:          {outcome.strategy.to_spec()}")
        print(f"schema similarity: {outcome.schema_similarity:.3f}")
        print(f"correspondences:   {len(rows)}")
        print(f"spliced:           {'yes' if spliced else 'no (full recompute)'}")
        print(f"rows reused:       {delta.reused}")
        print(f"rows recomputed:   {delta.recomputed}")
        if delta.added:
            print(f"paths added:       {', '.join(delta.added)}")
        if delta.removed:
            print(f"paths removed:     {', '.join(delta.removed)}")
    return 0


def _command_strategies(arguments: argparse.Namespace) -> int:
    if arguments.save is not None and not arguments.repository:
        raise ComaError("--save requires --repository to persist the strategy")
    session = _open_session(arguments.repository)
    if arguments.save is not None:
        name, spec = arguments.save
        saved = session.save_strategy(name, spec)
        print(f"stored strategy {name!r}: {saved.to_spec()}")

    library_rows = [
        {
            "matcher": info.name,
            "kind": info.kind,
            "schema_info": info.schema_info or "-",
            "auxiliary_info": info.auxiliary_info or "-",
        }
        for info in session.library.entries()
    ]
    print(format_table(library_rows, title="Matcher library (cf. Table 3)"))

    names = session.strategy_names()
    if names:
        # In the CLI every listed name is repository-backed (--save requires
        # --repository and persists before registering), and the repository
        # stores the spec column exactly for listings.
        repository = session.repository
        strategy_rows = [
            {"name": name, "spec": repository.strategy_spec(name)} for name in names
        ]
        print()
        print(format_table(strategy_rows, title="Stored named strategies"))
    else:
        print("\nno stored named strategies"
              + ("" if arguments.repository else " (no repository attached)"))
    return 0


def _command_stats(arguments: argparse.Namespace) -> int:
    if arguments.schema is None and arguments.store is None:
        raise ComaError("coma stats needs a schema file and/or --store <file>")
    if arguments.schema is not None:
        schema = DEFAULT_IMPORTERS.import_file(arguments.schema)
        statistics = schema.statistics()
        print(format_table([statistics.as_row()], title="Schema statistics (cf. Table 5)"))
    if arguments.store is not None:
        _print_reuse_stats(arguments.store)
    return 0


def _print_reuse_stats(store_path: str) -> None:
    """Reuse effectiveness: persistent-store and kernel-memo-pool counters.

    The store counters are lifetime totals accumulated on disk across every
    process that used the store; the kernel memo pool is process-local, so a
    long-lived process (``coma serve``) reports it through ``/stats`` while
    this command shows the current process (useful after batch runs in the
    same interpreter).
    """
    import os

    from repro.matchers.memo import DEFAULT_MEMO_POOL
    from repro.repository.store import SimilarityStore

    # A stats read must not conjure an empty database out of a typo, nor run
    # the store DDL against whatever file the path happens to point at: the
    # read-only open fails cleanly on missing paths, non-SQLite files and
    # SQLite databases that are not similarity stores, and guarantees the
    # inspected file is never mutated.
    if store_path != ":memory:" and not os.path.exists(store_path):
        raise ComaError(f"no similarity store at {store_path!r}")
    with SimilarityStore(store_path, readonly=True) as store:
        info = store.info()
    consultations = info["lifetime_hits"] + info["lifetime_misses"]
    hit_rate = info["lifetime_hits"] / consultations if consultations else 0.0
    store_rows = [{
        "cubes": info["cubes"],
        "cube_mb": round(info["cube_bytes"] / 1e6, 2),
        "tokens": info["tokens"],
        "lifetime_hits": info["lifetime_hits"],
        "lifetime_misses": info["lifetime_misses"],
        "hit_rate": round(hit_rate, 3),
        "corrupt": info["lifetime_corrupt"],
        "quarantined": info["lifetime_quarantined"],
    }]
    print(format_table(store_rows, title=f"Persistent similarity store ({info['path']})"))
    dtype_rows = [
        {
            "dtype": name,
            "cubes": entry["cubes"],
            "bytes": entry["bytes"],
            "mmap_files": entry["external"],
        }
        for name, entry in sorted(info.get("cube_dtypes", {}).items())
    ]
    if dtype_rows:
        print()
        print(format_table(
            dtype_rows, title="Cube payload bytes by storage dtype"
        ))
    memo = DEFAULT_MEMO_POOL.info()
    print()
    if memo["hits"] or memo["misses"]:
        print(format_table([memo], title="Kernel memo pool (this process)"))
    else:
        # A fresh CLI process has run no matches; zeros here would only
        # mislead.  The live counters of a running service are on /stats.
        print("kernel memo pool: no activity in this process "
              "(live counters: GET /stats on a running `coma serve`)")


def _command_corpus(arguments: argparse.Namespace) -> int:
    import os

    from repro.search import SchemaCorpus

    action = arguments.action
    if action == "add" and not arguments.items:
        raise ComaError("coma corpus add needs at least one schema file")
    if action == "remove" and not arguments.items:
        raise ComaError("coma corpus remove needs at least one registered name")
    if action in ("list", "info") and arguments.items:
        raise ComaError(f"coma corpus {action} takes no further arguments")
    # Only 'add' may create the file; every other action inspects an
    # existing corpus and must not conjure an empty one out of a typo.
    if action != "add" and arguments.corpus != ":memory:" \
            and not os.path.exists(arguments.corpus):
        raise ComaError(f"no schema corpus at {arguments.corpus!r}")
    with SchemaCorpus(arguments.corpus) as corpus:
        if action == "add":
            for path in arguments.items:
                schema = DEFAULT_IMPORTERS.import_file(path)
                corpus.add(schema)
                print(f"registered {schema.name!r} ({len(schema.paths())} paths)")
            print(f"corpus {arguments.corpus}: {len(corpus)} schemas")
        elif action == "remove":
            for name in arguments.items:
                if corpus.remove(name):
                    print(f"removed {name!r}")
                else:
                    raise ComaError(
                        f"no schema named {name!r} in corpus {arguments.corpus!r}"
                    )
        elif action == "list":
            names = corpus.names()
            for name in names:
                print(name)
            print(f"({len(names)} schemas)")
        else:  # info
            info = corpus.info()
            rows = [{
                "schemas": info["schemas"],
                "paths": info["paths"],
                "terms": info["terms"],
                "postings": info["postings"],
                "nodes": info["nodes"],
            }]
            print(format_table(rows, title=f"Schema corpus ({info['path']})"))
    return 0


def _command_search(arguments: argparse.Namespace) -> int:
    import os

    if arguments.corpus != ":memory:" and not os.path.exists(arguments.corpus):
        raise ComaError(f"no schema corpus at {arguments.corpus!r}")
    query = DEFAULT_IMPORTERS.import_file(arguments.query)
    with MatchSession(corpus=arguments.corpus) as session:
        results = session.search(
            query,
            k=arguments.k,
            strategy=arguments.strategy,
            candidates=arguments.candidates,
            processes=arguments.processes,
        )
        corpus_size = len(session.corpus)
    rows = [
        {
            "rank": rank,
            "schema": result.name,
            "schema_similarity": round(result.schema_similarity, 4),
            "index_score": round(result.candidate_score, 4),
            "correspondences": len(result.outcome.result.correspondences),
        }
        for rank, result in enumerate(results, start=1)
    ]
    title = (f"Top-{arguments.k} matches for {query.name} "
             f"(corpus of {corpus_size} schemas)")
    if rows:
        print(format_table(rows, title=title))
    else:
        print(f"{title}\nno candidates (is the corpus empty?)")
    if arguments.details:
        for result in results:
            print(f"\n{query.name} <-> {result.name} "
                  f"(similarity {result.schema_similarity:.3f})")
            for correspondence in result.outcome.result:
                if correspondence.similarity >= arguments.min_similarity:
                    print(f"  {correspondence.source.dotted()} <-> "
                          f"{correspondence.target.dotted()} "
                          f"{correspondence.similarity:.3f}")
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    # Validate everything *before* touching sockets or files, so a bad flag
    # exits with one clean message instead of a traceback (or a half-started
    # server).
    if arguments.workers is not None and arguments.pool_size is not None:
        raise ComaError("--pool-size is a deprecated alias for --workers; "
                        "pass only one of them")
    workers = arguments.workers if arguments.workers is not None else arguments.pool_size
    if workers is None:
        workers = 4
    if workers < 1:
        raise ComaError(f"--workers must be >= 1, got {workers}")
    if arguments.backend not in ("thread", "process"):
        raise ComaError(
            f"unknown --backend {arguments.backend!r}: choose 'thread' "
            f"(one process, pooled sessions) or 'process' (worker processes)"
        )
    if arguments.store_dtype is not None and not arguments.store:
        raise ComaError("--store-dtype requires --store <file>")
    if arguments.frontend not in ("sync", "async"):
        raise ComaError(
            f"unknown --frontend {arguments.frontend!r}: choose 'sync' "
            f"(thread per connection) or 'async' (asyncio event loop)"
        )
    if arguments.max_queue is not None:
        if arguments.frontend != "async":
            raise ComaError("--max-queue requires --frontend async")
        if arguments.max_queue < 1:
            raise ComaError(f"--max-queue must be >= 1, got {arguments.max_queue}")
    if arguments.read_timeout is not None:
        if arguments.frontend != "async":
            raise ComaError("--read-timeout requires --frontend async")
        if arguments.read_timeout <= 0:
            raise ComaError(
                f"--read-timeout must be positive, got {arguments.read_timeout}"
            )
    fault_plan = None
    if arguments.fault_plan is not None:
        import os

        # Fault injection wedges workers, corrupts store reads and kills
        # processes by design -- never something a copy-pasted command line
        # should switch on silently.  The environment gate is the operator's
        # explicit second signature on a chaos run.
        if os.environ.get("COMA_ENABLE_FAULTS") != "1":
            raise ComaError(
                "--fault-plan injects faults into a live service and is "
                "refused unless the environment sets COMA_ENABLE_FAULTS=1 "
                "(see docs/robustness.md)"
            )
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.load(arguments.fault_plan).to_dict()

    from repro.service.server import serve

    serve(
        host=arguments.host,
        port=arguments.port,
        verbose=not arguments.quiet,
        pool_size=workers,
        backend=arguments.backend,
        repository_path=arguments.repository,
        store_path=arguments.store,
        store_dtype=arguments.store_dtype,
        corpus_path=arguments.corpus,
        frontend=arguments.frontend,
        max_queue=arguments.max_queue,
        read_timeout=arguments.read_timeout,
        fault_plan=fault_plan,
    )
    return 0


def _command_tasks() -> int:
    rows = []
    for task in load_all_tasks():
        rows.append(
            {
                "task": task.name,
                "schemas": f"{task.source.name}<->{task.target.name}",
                "matches": task.match_count,
                "matched_paths": task.matched_path_count,
                "all_paths": task.total_paths,
                "schema_similarity": task.schema_similarity,
            }
        )
    print(format_table(rows, title="Evaluation match tasks (cf. Figure 8)"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = _build_parser()
    arguments = parser.parse_args(list(argv) if argv is not None else None)
    if arguments.command == "match":
        return _command_match(arguments)
    if arguments.command == "rematch":
        return _command_rematch(arguments)
    if arguments.command == "strategies":
        return _command_strategies(arguments)
    if arguments.command == "stats":
        return _command_stats(arguments)
    if arguments.command == "corpus":
        return _command_corpus(arguments)
    if arguments.command == "search":
        return _command_search(arguments)
    if arguments.command == "tasks":
        return _command_tasks()
    if arguments.command == "serve":
        return _command_serve(arguments)
    parser.error(f"unknown command {arguments.command!r}")
    return 2


def console_main(argv: Optional[Sequence[str]] = None) -> int:
    """Script entry point: library errors become a clean message, not a traceback."""
    try:
        return main(argv)
    except ComaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(console_main())
