"""Command-line interface: match two schema files and print the mapping.

Usage examples::

    coma match po1.sql po2.xsd
    coma match a.xsd b.xsd --matchers NamePath Leaves --selection "Thr(0.5)+Delta(0.02)"
    coma stats po.xsd
    coma tasks            # list the bundled evaluation tasks and their sizes

The CLI is intentionally thin: everything it does is a few calls into the
public API, so it doubles as a usage example.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.combination.strategy import parse_combination
from repro.core.match_operation import match
from repro.datasets.gold_standard import load_all_tasks
from repro.evaluation.metrics import evaluate_mapping
from repro.evaluation.report import format_table
from repro.importers.registry import DEFAULT_IMPORTERS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coma",
        description="COMA schema matching (Do & Rahm, VLDB 2002) - reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    match_parser = subparsers.add_parser("match", help="match two schema files")
    match_parser.add_argument("source", help="source schema file (.sql, .xsd, .json)")
    match_parser.add_argument("target", help="target schema file (.sql, .xsd, .json)")
    match_parser.add_argument(
        "--matchers", nargs="+", default=None,
        help="matcher names from the library (default: the five hybrid matchers)",
    )
    match_parser.add_argument("--aggregation", default="Average",
                              help="aggregation strategy: Max, Min or Average")
    match_parser.add_argument("--direction", default="Both",
                              help="direction strategy: Both, LargeSmall or SmallLarge")
    match_parser.add_argument("--selection", default="Thr(0.5)+Delta(0.02)",
                              help='selection strategy, e.g. "MaxN(1)" or "Thr(0.5)+Delta(0.02)"')
    match_parser.add_argument("--min-similarity", type=float, default=0.0,
                              help="only print correspondences at or above this similarity")

    stats_parser = subparsers.add_parser("stats", help="print the Table 5 statistics of a schema file")
    stats_parser.add_argument("schema", help="schema file (.sql, .xsd, .json)")

    subparsers.add_parser("tasks", help="list the bundled evaluation tasks (Figure 8 data)")
    return parser


def _command_match(arguments: argparse.Namespace) -> int:
    source = DEFAULT_IMPORTERS.import_file(arguments.source)
    target = DEFAULT_IMPORTERS.import_file(arguments.target)
    combination = parse_combination(
        aggregation=arguments.aggregation,
        direction=arguments.direction,
        selection=arguments.selection,
    )
    outcome = match(source, target, matchers=arguments.matchers, combination=combination)
    rows = [
        {
            "source": correspondence.source.dotted(),
            "target": correspondence.target.dotted(),
            "similarity": correspondence.similarity,
        }
        for correspondence in outcome.result
        if correspondence.similarity >= arguments.min_similarity
    ]
    print(format_table(rows, title=f"Mapping {source.name} <-> {target.name}"))
    print(f"\nschema similarity: {outcome.schema_similarity:.3f}")
    print(f"correspondences:   {len(rows)}")
    return 0


def _command_stats(arguments: argparse.Namespace) -> int:
    schema = DEFAULT_IMPORTERS.import_file(arguments.schema)
    statistics = schema.statistics()
    print(format_table([statistics.as_row()], title="Schema statistics (cf. Table 5)"))
    return 0


def _command_tasks() -> int:
    rows = []
    for task in load_all_tasks():
        rows.append(
            {
                "task": task.name,
                "schemas": f"{task.source.name}<->{task.target.name}",
                "matches": task.match_count,
                "matched_paths": task.matched_path_count,
                "all_paths": task.total_paths,
                "schema_similarity": task.schema_similarity,
            }
        )
    print(format_table(rows, title="Evaluation match tasks (cf. Figure 8)"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = _build_parser()
    arguments = parser.parse_args(list(argv) if argv is not None else None)
    if arguments.command == "match":
        return _command_match(arguments)
    if arguments.command == "stats":
        return _command_stats(arguments)
    if arguments.command == "tasks":
        return _command_tasks()
    parser.error(f"unknown command {arguments.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
