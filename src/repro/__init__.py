"""COMA: flexible combination of schema matching approaches (Do & Rahm, VLDB 2002).

This package is a full reproduction of the COMA schema matching system:

* a schema graph model with path-level match granularity (:mod:`repro.model`),
* importers for relational DDL, XSD and dict specifications (:mod:`repro.importers`),
* the matcher library -- simple, hybrid and reuse-oriented matchers
  (:mod:`repro.matchers`),
* the combination framework: similarity cubes, aggregation, direction,
  selection and combined similarity (:mod:`repro.combination`),
* the vectorized batch match engine with its shared path-profile caches
  (:mod:`repro.engine`),
* the match operation and the iterative/interactive processor (:mod:`repro.core`),
* a SQLite-backed repository for schemas, cubes and mappings (:mod:`repro.repository`),
* the evaluation harness reproducing the paper's experiments (:mod:`repro.evaluation`),
* the bundled purchase-order test schemas and gold standards (:mod:`repro.datasets`).

Quickstart::

    from repro import match
    from repro.datasets import load_po1, load_po2

    outcome = match(load_po1(), load_po2())
    for correspondence in outcome.result:
        print(correspondence)
"""

from repro.combination import (
    CombinationStrategy,
    MaxDelta,
    MaxN,
    SimilarityCube,
    SimilarityMatrix,
    Threshold,
    default_combination,
    parse_combination,
)
from repro.core import (
    MatchOutcome,
    MatchProcessor,
    MatchStrategy,
    UserFeedbackStore,
    default_strategy,
    match,
    match_with_strategy,
    schema_similarity,
)
from repro.engine import MatchEngine
from repro.importers import DEFAULT_IMPORTERS
from repro.matchers import DEFAULT_LIBRARY, MatchContext, Matcher, MatcherLibrary
from repro.model import (
    Correspondence,
    ElementKind,
    GenericType,
    MatchResult,
    Schema,
    SchemaBuilder,
    SchemaElement,
    SchemaPath,
)
from repro.repository import Repository

__version__ = "1.0.0"

__all__ = [
    "CombinationStrategy",
    "Correspondence",
    "DEFAULT_IMPORTERS",
    "DEFAULT_LIBRARY",
    "ElementKind",
    "GenericType",
    "MatchContext",
    "MatchEngine",
    "MatchOutcome",
    "MatchProcessor",
    "MatchResult",
    "MatchStrategy",
    "Matcher",
    "MatcherLibrary",
    "MaxDelta",
    "MaxN",
    "Repository",
    "Schema",
    "SchemaBuilder",
    "SchemaElement",
    "SchemaPath",
    "SimilarityCube",
    "SimilarityMatrix",
    "Threshold",
    "UserFeedbackStore",
    "__version__",
    "default_combination",
    "default_strategy",
    "match",
    "match_with_strategy",
    "parse_combination",
    "schema_similarity",
]
