"""COMA: flexible combination of schema matching approaches (Do & Rahm, VLDB 2002).

This package is a full reproduction of the COMA schema matching system:

* a schema graph model with path-level match granularity (:mod:`repro.model`),
* importers for relational DDL, XSD and dict specifications (:mod:`repro.importers`),
* the matcher library -- simple, hybrid and reuse-oriented matchers
  (:mod:`repro.matchers`),
* the combination framework: similarity cubes, aggregation, direction,
  selection and combined similarity (:mod:`repro.combination`),
* the vectorized batch match engine with its shared path-profile caches
  (:mod:`repro.engine`),
* the session layer: the long-lived service front-end owning shared resources
  and caches (:mod:`repro.session`),
* the service layer: the session pool behind a stdlib-only HTTP JSON API with
  a matching client -- ``coma serve`` / :mod:`repro.service`,
* the match operation and the iterative/interactive processor (:mod:`repro.core`),
* a SQLite-backed repository for schemas, cubes, mappings and named
  strategies (:mod:`repro.repository`),
* the evaluation harness reproducing the paper's experiments (:mod:`repro.evaluation`),
* the bundled purchase-order test schemas and gold standards (:mod:`repro.datasets`).

Quickstart::

    from repro import MatchSession
    from repro.datasets import load_po1, load_po2

    session = MatchSession()
    outcome = session.match(load_po1(), load_po2())
    for correspondence in outcome.result:
        print(correspondence)

Strategies are declarative and parseable; the same session runs batches::

    outcome = session.match(a, b, strategy="All(Max,Both,Thr(0.5)+MaxN(1),Average)")
    outcomes = session.match_many([(a, b), (a, c), (b, c)])

The historical free functions (``match``, ``match_with_strategy``,
``build_context``, ``execute_matchers``, ``schema_similarity``) remain
available as deprecated shims over a process-wide default session.
"""

from __future__ import annotations

import warnings as _warnings
from typing import Optional as _Optional, Sequence as _Sequence

from repro.combination import (
    CombinationStrategy,
    MaxDelta,
    MaxN,
    SimilarityCube,
    SimilarityMatrix,
    Threshold,
    combination_from_spec,
    default_combination,
    parse_combination,
)
from repro.core import (
    MatchOutcome,
    MatchProcessor,
    MatchStrategy,
    UserFeedbackStore,
    default_strategy,
)
from repro.core import match_operation as _match_operation
from repro.engine import MatchEngine
from repro.importers import DEFAULT_IMPORTERS
from repro.matchers import DEFAULT_LIBRARY, MatchContext, Matcher, MatcherLibrary
from repro.model import (
    Correspondence,
    ElementKind,
    GenericType,
    MatchResult,
    Schema,
    SchemaBuilder,
    SchemaElement,
    SchemaPath,
)
from repro.repository import Repository
from repro.session import MatchSession, default_session, reset_default_session

__version__ = "1.2.0"


def _deprecated(old: str, new: str) -> None:
    _warnings.warn(
        f"repro.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def match(
    source: Schema,
    target: Schema,
    matchers: _Optional[_Sequence] = None,
    combination: _Optional[CombinationStrategy] = None,
    synonyms=None,
    feedback=None,
    repository=None,
    library: _Optional[MatcherLibrary] = None,
    engine: _Optional[MatchEngine] = None,
) -> MatchOutcome:
    """Deprecated shim: match two schemas through the process-wide default session.

    Prefer ``MatchSession().match(source, target)`` -- a session reuses
    tokenizers, synonym tables, path profiles and similarity cubes across
    operations.  Calls overriding session-level resources (synonyms, library,
    engine, repository) fall back to a one-off stateless operation.
    """
    _deprecated("match()", "MatchSession.match()")
    if synonyms is None and repository is None and library is None and engine is None:
        # Legacy semantics: always start from the paper's default strategy,
        # regardless of how the default session may have been reconfigured.
        strategy = default_strategy()
        if matchers is not None:
            strategy = strategy.replaced(matchers=list(matchers), name="")
        if combination is not None:
            strategy = strategy.replaced(combination=combination)
        return default_session().match(
            source, target, strategy=strategy, feedback=feedback
        )
    return _match_operation.match(
        source,
        target,
        matchers=matchers,
        combination=combination,
        synonyms=synonyms,
        feedback=feedback,
        repository=repository,
        library=library,
        engine=engine,
    )


def match_with_strategy(
    source: Schema,
    target: Schema,
    strategy: MatchStrategy,
    context: _Optional[MatchContext] = None,
    library: _Optional[MatcherLibrary] = None,
    engine: _Optional[MatchEngine] = None,
) -> MatchOutcome:
    """Deprecated shim: prefer ``MatchSession.match(source, target, strategy=...)``."""
    _deprecated("match_with_strategy()", "MatchSession.match(..., strategy=...)")
    if context is None and library is None and engine is None:
        return default_session().match(source, target, strategy=strategy)
    return _match_operation.match_with_strategy(
        source, target, strategy, context=context, library=library, engine=engine
    )


def build_context(source: Schema, target: Schema, **kwargs) -> MatchContext:
    """Deprecated shim: prefer ``MatchSession.context_for(source, target)``."""
    _deprecated("build_context()", "MatchSession.context_for()")
    return _match_operation.build_context(source, target, **kwargs)


def execute_matchers(matchers, context, engine: _Optional[MatchEngine] = None):
    """Deprecated shim: prefer ``MatchSession`` (or ``MatchEngine.execute``)."""
    _deprecated("execute_matchers()", "MatchEngine.execute()")
    return _match_operation.execute_matchers(matchers, context, engine=engine)


def schema_similarity(source: Schema, target: Schema, **kwargs) -> float:
    """Deprecated shim: prefer ``MatchSession.schema_similarity(source, target)``."""
    _deprecated("schema_similarity()", "MatchSession.schema_similarity()")
    if not kwargs:
        return default_session().schema_similarity(source, target)
    return _match_operation.schema_similarity(source, target, **kwargs)


__all__ = [
    "CombinationStrategy",
    "Correspondence",
    "DEFAULT_IMPORTERS",
    "DEFAULT_LIBRARY",
    "ElementKind",
    "GenericType",
    "MatchContext",
    "MatchEngine",
    "MatchOutcome",
    "MatchProcessor",
    "MatchResult",
    "MatchSession",
    "MatchStrategy",
    "Matcher",
    "MatcherLibrary",
    "MaxDelta",
    "MaxN",
    "Repository",
    "Schema",
    "SchemaBuilder",
    "SchemaElement",
    "SchemaPath",
    "SimilarityCube",
    "SimilarityMatrix",
    "Threshold",
    "UserFeedbackStore",
    "__version__",
    "build_context",
    "combination_from_spec",
    "default_combination",
    "default_session",
    "default_strategy",
    "execute_matchers",
    "match",
    "match_with_strategy",
    "parse_combination",
    "reset_default_session",
    "schema_similarity",
]
