"""Top-K pruned corpus search: cheap index ranking, full pipeline on survivors.

The :class:`CorpusSearcher` composes the two halves of corpus-scale matching:

1. the :class:`~repro.search.corpus.SchemaCorpus` ranks every registered
   schema against the query's vocabulary with an idf-weighted set overlap --
   microseconds per candidate, no matchers involved;
2. the full :class:`~repro.session.session.MatchSession` pipeline (including
   the reuse providers, finally exercised at the scale they were designed
   for) runs **only on the pruned survivor set**, and the survivors are
   re-ranked by real schema similarity.

The candidate pool is deliberately wider than the requested ``k`` (default
``max(4 * k, 16)``) so the cheap ranking only has to get the answer *into*
the pool, not order it perfectly -- the matcher pipeline does the final
ordering.  Both stages are deterministic (ties break by schema name), so two
searches over the same corpus return identical rankings -- the property the
service layer relies on for byte-identical ``POST /search`` responses.

Survivor matching accepts the same fan-out controls as
:meth:`~repro.session.session.MatchSession.match_many` (``processes`` /
``process_pool``) plus a ``match_many`` override hook, which is how the
service layer routes survivor matching through its existing thread or
process session pool instead of the searcher's own session.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.exceptions import SearchError
from repro.model.schema import Schema
from repro.repository.store import schema_content_digest, tokenizer_digest
from repro.search.corpus import CandidateScore, SchemaCorpus, schema_vocabulary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.match_operation import MatchOutcome
    from repro.parallel.pool import ProcessSessionPool
    from repro.session.session import MatchSession, StrategyLike

#: ``match_many`` override signature: a batch of (source, target, strategy)
#: items in, one MatchOutcome per item (in order) out.
MatchManyFn = Callable[
    [Sequence[Tuple[Schema, Schema, object]]], List["MatchOutcome"]
]

#: Widening factor of the candidate pool over the requested ``k``.
DEFAULT_POOL_FACTOR = 4
#: Floor of the candidate pool, so tiny ``k`` still casts a reasonable net.
DEFAULT_POOL_MIN = 16


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """One ranked hit of a corpus search.

    ``schema_similarity`` is the full-pipeline combined similarity (the
    ranking key); ``candidate_score`` is the cheap index score that got the
    schema into the survivor pool (useful for tuning the pool size);
    ``outcome`` carries the complete match outcome, including the selected
    per-path mapping (``outcome.result``).
    """

    name: str
    schema_similarity: float
    candidate_score: float
    outcome: "MatchOutcome"
    candidate: CandidateScore

    @property
    def mapping(self):
        """The selected path mapping of the full pipeline (``outcome.result``)."""
        return self.outcome.result


def candidate_pool_size(k: int, candidates: Optional[int] = None) -> int:
    """The survivor-pool size for a requested ``k`` (explicit or default).

    Examples
    --------
    >>> candidate_pool_size(10)
    40
    >>> candidate_pool_size(1)
    16
    >>> candidate_pool_size(3, candidates=7)
    7
    """
    if candidates is not None:
        if candidates < k:
            raise SearchError(
                f"candidate pool ({candidates}) must be >= k ({k})"
            )
        return int(candidates)
    return max(DEFAULT_POOL_FACTOR * int(k), DEFAULT_POOL_MIN)


class CorpusSearcher:
    """Search a :class:`SchemaCorpus` with a session's full match pipeline.

    Parameters
    ----------
    session:
        The :class:`~repro.session.session.MatchSession` whose resources
        (library, strategy resolution, caches, reuse providers) score the
        survivors.  Its tokenizer must match the corpus' pinned tokenizer
        configuration -- otherwise query vocabularies would not line up with
        the index and ranking would silently degrade, so the mismatch raises.
    corpus:
        The corpus to search.

    Examples
    --------
    >>> from repro.datasets.figure1 import load_po1, load_po2
    >>> from repro.session import MatchSession
    >>> corpus = SchemaCorpus(":memory:")
    >>> _ = corpus.add_many([load_po1(), load_po2()])
    >>> searcher = CorpusSearcher(MatchSession(), corpus)
    >>> [hit.name for hit in searcher.search(load_po1(), k=1)]
    ['PO2']
    """

    def __init__(self, session: "MatchSession", corpus: SchemaCorpus):
        session_digest = tokenizer_digest(session.tokenizer)
        if session_digest != corpus.tokenizer_digest:
            raise SearchError(
                "the session's tokenizer configuration differs from the one "
                "this corpus was indexed with; query and index vocabularies "
                f"would not line up (corpus {corpus.tokenizer_digest[:12]}..., "
                f"session {session_digest[:12]}...)"
            )
        self._session = session
        self._corpus = corpus

    @property
    def session(self) -> "MatchSession":
        """The session scoring the survivors."""
        return self._session

    @property
    def corpus(self) -> SchemaCorpus:
        """The corpus being searched."""
        return self._corpus

    # -- stage 1: cheap index ranking ------------------------------------------

    def rank(
        self,
        schema: Schema,
        limit: Optional[int] = None,
        exclude_self: bool = True,
        exclude_names: Sequence[str] = (),
    ) -> List[CandidateScore]:
        """The index-only candidate ranking (no matchers run).

        Uses the session's cached :class:`~repro.engine.profiles.PathSetProfile`
        of the query, so a search immediately followed by a match of the
        winners never re-tokenizes the query schema.  ``exclude_names``
        leaves specific registered schemas out of the ranking (e.g. known
        near-copies of the query crowding out more distant targets).
        """
        profile = self._session.profile_for(schema)
        exclude = (schema_content_digest(schema),) if exclude_self else ()
        return self._corpus.rank(
            schema_vocabulary(profile),
            limit=limit,
            exclude_digests=exclude,
            exclude_names=exclude_names,
        )

    # -- stage 2: full pipeline on survivors -----------------------------------

    def search(
        self,
        schema: Schema,
        k: int = 10,
        strategy: "StrategyLike" = None,
        candidates: Optional[int] = None,
        exclude_self: bool = True,
        exclude_names: Sequence[str] = (),
        processes: Optional[int] = None,
        process_pool: Optional["ProcessSessionPool"] = None,
        match_many: Optional[MatchManyFn] = None,
    ) -> List[SearchResult]:
        """Find the best match targets for ``schema`` in the corpus.

        Parameters
        ----------
        schema:
            The query schema.
        k:
            Number of ranked results to return.
        strategy:
            Any strategy reference the session resolves; ``None`` uses the
            session default.
        candidates:
            Explicit survivor-pool size (default ``max(4 * k, 16)``).  The
            full pipeline runs on exactly this many index-ranked candidates
            (fewer if the corpus is smaller).
        exclude_self:
            Drop registered schemas whose content digest equals the query's
            (a corpus usually contains the query schema itself).
        exclude_names:
            Leave these registered schemas out of the ranking entirely
            (e.g. known near-copies of the query that would otherwise crowd
            the survivor pool).
        processes / process_pool:
            Fan survivor matching out over worker processes, exactly as in
            :meth:`~repro.session.session.MatchSession.match_many`.
        match_many:
            Override the survivor-matching executor with any callable of the
            same shape (items of ``(source, target, strategy)`` in, outcomes
            in order out).  The service layer passes its session pool's
            ``match_many`` here so search shares the pool's warm sessions and
            backend (thread or process).

        Returns
        -------
        list of SearchResult
            At most ``k`` results ordered by full-pipeline schema similarity
            (descending), ties broken by index score then name.

        Raises
        ------
        SearchError
            If ``k < 1`` or the candidate pool is smaller than ``k``.
        """
        if k < 1:
            raise SearchError(f"k must be >= 1, got {k}")
        pool = candidate_pool_size(k, candidates)
        ranked = self.rank(
            schema,
            limit=pool,
            exclude_self=exclude_self,
            exclude_names=exclude_names,
        )
        if not ranked:
            return []
        survivors = [self._corpus.load(candidate.name) for candidate in ranked]
        items: List[Tuple[Schema, Schema, object]] = [
            (schema, target, strategy) for target in survivors
        ]
        if match_many is not None:
            if processes is not None or process_pool is not None:
                raise SearchError(
                    "pass either a match_many override or processes/"
                    "process_pool, not both"
                )
            outcomes = match_many(items)
        else:
            outcomes = self._session.match_many(
                items, processes=processes, process_pool=process_pool
            )
        if len(outcomes) != len(ranked):
            raise SearchError(
                f"survivor matching returned {len(outcomes)} outcomes for "
                f"{len(ranked)} candidates"
            )
        results = [
            SearchResult(
                name=candidate.name,
                schema_similarity=float(outcome.schema_similarity),
                candidate_score=candidate.score,
                outcome=outcome,
                candidate=candidate,
            )
            for candidate, outcome in zip(ranked, outcomes)
        ]
        results.sort(
            key=lambda r: (-r.schema_similarity, -r.candidate_score, r.name)
        )
        return results[: int(k)]
