"""The schema corpus: a persistent inverted candidate index over schemas.

Corpus-scale matching ("find the best targets for this schema among
thousands") cannot afford the full matcher pipeline per candidate -- the
pipeline is milliseconds per pair, and a repository holds thousands of pairs
per query.  A :class:`SchemaCorpus` therefore registers every schema into a
small SQLite database holding three indexed structures:

* an **inverted term index** over the unique-key vocabularies the batch
  engine already extracts per :class:`~repro.engine.profiles.PathSetProfile`:
  name *tokens*, lower-cased character *n-grams* and *soundex* codes.  Each
  (kind, term) row carries its document frequency, so candidate ranking is a
  cheap idf-weighted set-overlap computed with numpy over the posting lists
  (see :meth:`SchemaCorpus.rank`);
* a **node interval table**: the pre/post-order encoding of each schema's
  path tree (:mod:`repro.search.intervals`), so structural filtering --
  "schemas containing a subtree labelled like X with roughly this many
  descendants" -- is an indexed B-tree range query over ``(label, size)``
  instead of a graph traversal per schema;
* the **schema documents** themselves (the canonical JSON serialisation), so
  pruned survivors can be loaded and pushed through the full
  :class:`~repro.session.session.MatchSession` pipeline without a separate
  schema store.

The corpus lives in its own SQLite file (or ``":memory:"``) alongside the
:class:`~repro.repository.repository.Repository` and the
:class:`~repro.repository.store.SimilarityStore` -- same deployment model,
same thread-safety discipline (one internal lock, connections opened with
``check_same_thread=False``).  All vocabulary extraction goes through one
tokenizer whose configuration digest is pinned in the corpus metadata:
opening a corpus with a differently configured tokenizer raises rather than
silently producing disjoint query/index vocabularies.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import sqlite3
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.engine.profiles import PathSetProfile, TOKEN_MODE_NAME
from repro.exceptions import SearchError
from repro.linguistic.tokenizer import NameTokenizer
from repro.model.schema import Schema
from repro.repository.serialization import schema_from_json, schema_to_json
from repro.repository.store import schema_content_digest, tokenizer_digest
from repro.search.intervals import IntervalNode, interval_encode

#: Term kinds of the inverted index, with their contribution weights in the
#: candidate score.  Tokens are the strongest signal (they survive the
#: tokenizer's abbreviation expansion), soundex codes catch spelling drift,
#: and grams are the high-recall backstop -- individually weak (their high
#: document frequency also earns them low idf) but dense.
TERM_KINDS: Tuple[str, ...] = ("token", "gram", "soundex")
KIND_WEIGHTS: Dict[str, float] = {"token": 1.0, "soundex": 0.6, "gram": 0.25}

#: n of the indexed character n-grams (matches the Trigram library matcher).
GRAM_SIZE = 3

#: SQL ``IN (...)`` chunk size (SQLite's default variable limit is 999).
_SQL_CHUNK = 400

_CORPUS_DDL = """
CREATE TABLE IF NOT EXISTS corpus_meta (
    key    TEXT PRIMARY KEY,
    value  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS corpus_schemas (
    schema_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    name           TEXT NOT NULL UNIQUE,
    digest         TEXT NOT NULL,
    path_count     INTEGER NOT NULL,
    norm           REAL NOT NULL,
    document       TEXT NOT NULL,
    registered_at  REAL NOT NULL DEFAULT (julianday('now'))
);
CREATE TABLE IF NOT EXISTS corpus_terms (
    term_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    kind     TEXT NOT NULL,
    term     TEXT NOT NULL,
    df       INTEGER NOT NULL DEFAULT 0,
    UNIQUE (kind, term)
);
CREATE TABLE IF NOT EXISTS corpus_postings (
    term_id    INTEGER NOT NULL,
    schema_id  INTEGER NOT NULL,
    count      INTEGER NOT NULL,
    PRIMARY KEY (term_id, schema_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS corpus_postings_by_schema
    ON corpus_postings (schema_id);
CREATE TABLE IF NOT EXISTS corpus_nodes (
    schema_id  INTEGER NOT NULL,
    pre        INTEGER NOT NULL,
    post       INTEGER NOT NULL,
    depth      INTEGER NOT NULL,
    size       INTEGER NOT NULL,
    label      TEXT NOT NULL,
    dotted     TEXT NOT NULL,
    PRIMARY KEY (schema_id, pre)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS corpus_nodes_by_label_size
    ON corpus_nodes (label, size);
"""


def schema_vocabulary(
    profile: PathSetProfile,
) -> Dict[Tuple[str, str], int]:
    """The indexed (kind, term) -> occurrence-count vocabulary of one profile.

    Counts are per path occurrence: a term carried by a shared element that
    appears on several paths counts once per path, mirroring COMA's
    path-granular match model.  The extraction reuses exactly the derived
    representations the batch matchers evaluate (token profile, n-gram sets,
    soundex codes), so the index vocabulary and the matcher vocabulary can
    never drift apart.
    """
    vocabulary: Dict[Tuple[str, str], int] = {}

    token_profile = profile.token_profile(TOKEN_MODE_NAME)
    for key in token_profile.keys:
        for token in key:
            entry = ("token", token)
            vocabulary[entry] = vocabulary.get(entry, 0) + 1

    gram_sets = profile.ngram_sets(GRAM_SIZE)
    soundex_codes = profile.soundex_codes()
    for unique_index in profile.name_inverse:
        for gram in gram_sets[unique_index]:
            entry = ("gram", gram)
            vocabulary[entry] = vocabulary.get(entry, 0) + 1
        code = soundex_codes[unique_index]
        if code:
            entry = ("soundex", code)
            vocabulary[entry] = vocabulary.get(entry, 0) + 1
    return vocabulary


def vocabulary_norm(vocabulary: Mapping[Tuple[str, str], int]) -> float:
    """The kind-weighted norm of a vocabulary (``sqrt`` of summed weights).

    Scores are normalised by both sides' norms, so a large schema does not
    dominate the ranking merely by carrying more terms.
    """
    total = sum(KIND_WEIGHTS[kind] for kind, _ in vocabulary)
    return float(np.sqrt(total)) if total > 0.0 else 1.0


@dataclasses.dataclass(frozen=True)
class CandidateScore:
    """One ranked candidate of the cheap index pass (no matchers involved)."""

    name: str
    score: float
    schema_id: int
    digest: str
    path_count: int


@dataclasses.dataclass(frozen=True)
class SubtreeHit:
    """One structural hit of :meth:`SchemaCorpus.find_subtrees`."""

    schema_name: str
    dotted: str
    size: int
    depth: int


def _chunks(items: Sequence, size: int = _SQL_CHUNK) -> Iterable[Sequence]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class SchemaCorpus:
    """A persistent, incrementally maintained schema corpus with a candidate index.

    Parameters
    ----------
    path:
        The SQLite database file (``":memory:"`` for tests and throwaway
        corpora).
    tokenizer:
        The tokenizer all vocabulary extraction goes through (default: a
        stock :class:`~repro.linguistic.tokenizer.NameTokenizer`).  Its
        configuration digest is pinned in the corpus on first write; opening
        an existing corpus with a different configuration raises
        :class:`~repro.exceptions.SearchError`.

    Thread safety: one internal reentrant lock serialises database access;
    the corpus may be shared by many sessions and service threads.

    Examples
    --------
    >>> from repro.datasets.figure1 import load_po1
    >>> corpus = SchemaCorpus(":memory:")
    >>> corpus.add(load_po1())
    1
    >>> len(corpus), corpus.names()
    (1, ('PO1',))
    >>> corpus.close()
    """

    #: Bound on the loaded-schema cache (documents are re-parsed on demand).
    MAX_LOADED_SCHEMAS = 2048

    def __init__(self, path: str, tokenizer: Optional[NameTokenizer] = None):
        self._path = path
        self._tokenizer = tokenizer if tokenizer is not None else NameTokenizer()
        self._tokenizer_digest = tokenizer_digest(self._tokenizer)
        self._lock = threading.RLock()
        self._loaded: Dict[int, Tuple[str, Schema]] = {}
        try:
            self._connection = sqlite3.connect(
                path, check_same_thread=False, timeout=30.0
            )
            self._connection.execute("PRAGMA busy_timeout = 30000")
            if path != ":memory:":
                with contextlib.suppress(sqlite3.Error):
                    self._connection.execute("PRAGMA journal_mode = WAL")
                    self._connection.execute("PRAGMA synchronous = NORMAL")
            self._connection.executescript(_CORPUS_DDL)
            self._connection.commit()
        except sqlite3.Error as error:
            raise SearchError(
                f"cannot open schema corpus {path!r}: {error}"
            ) from error
        pinned = self._meta("tokenizer_digest")
        if pinned is None:
            self._set_meta("tokenizer_digest", self._tokenizer_digest)
        elif pinned != self._tokenizer_digest:
            self._connection.close()
            raise SearchError(
                f"schema corpus {path!r} was built with a differently "
                f"configured tokenizer; query and index vocabularies would "
                f"not line up (expected digest {pinned[:12]}..., got "
                f"{self._tokenizer_digest[:12]}...)"
            )

    # -- lifecycle -------------------------------------------------------------

    @property
    def path(self) -> str:
        """The database path."""
        return self._path

    @property
    def tokenizer(self) -> NameTokenizer:
        """The tokenizer vocabulary extraction goes through."""
        return self._tokenizer

    @property
    def tokenizer_digest(self) -> str:
        """The pinned tokenizer-configuration digest of this corpus."""
        return self._tokenizer_digest

    def close(self) -> None:
        """Close the database.  Idempotent."""
        with self._lock:
            with contextlib.suppress(sqlite3.Error):
                self._connection.close()

    def __enter__(self) -> "SchemaCorpus":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _meta(self, key: str) -> Optional[str]:
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM corpus_meta WHERE key = ?", (key,)
            ).fetchone()
        return row[0] if row is not None else None

    def _set_meta(self, key: str, value: str) -> None:
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO corpus_meta (key, value) VALUES (?, ?)",
                (key, value),
            )
            self._connection.commit()

    # -- registration ----------------------------------------------------------

    def add(
        self,
        schema: Schema,
        replace: bool = True,
        profile: Optional[PathSetProfile] = None,
    ) -> int:
        """Register a schema: index its vocabulary and intervals, store its document.

        Parameters
        ----------
        schema:
            The schema to register (keyed by its name).
        replace:
            Replace an existing registration of the same name (default);
            with ``False`` a name collision raises
            :class:`~repro.exceptions.SearchError`.
        profile:
            An existing :class:`~repro.engine.profiles.PathSetProfile` of the
            schema's paths (e.g. the session-cached one); built on the spot
            when omitted.

        Returns
        -------
        int
            The corpus-internal schema id.

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1
        >>> corpus = SchemaCorpus(":memory:")
        >>> corpus.add(load_po1()) > 0
        True
        >>> corpus.add(load_po1(), replace=False)
        Traceback (most recent call last):
          ...
        repro.exceptions.SearchError: schema 'PO1' is already registered...
        """
        if profile is None:
            profile = PathSetProfile(schema.paths(), self._tokenizer)
        vocabulary = schema_vocabulary(profile)
        norm = vocabulary_norm(vocabulary)
        nodes = interval_encode(schema)
        document = schema_to_json(schema)
        digest = schema_content_digest(schema)
        with self._lock:
            existing = self._connection.execute(
                "SELECT schema_id FROM corpus_schemas WHERE name = ?",
                (schema.name,),
            ).fetchone()
            if existing is not None:
                if not replace:
                    raise SearchError(
                        f"schema {schema.name!r} is already registered in "
                        f"corpus {self._path!r}; pass replace=True to update it"
                    )
                self._remove_locked(int(existing[0]))
            cursor = self._connection.execute(
                "INSERT INTO corpus_schemas (name, digest, path_count, norm, "
                "document) VALUES (?, ?, ?, ?, ?)",
                (schema.name, digest, len(schema.paths()), norm, document),
            )
            schema_id = int(cursor.lastrowid)
            self._index_terms_locked(schema_id, vocabulary)
            self._connection.executemany(
                "INSERT INTO corpus_nodes (schema_id, pre, post, depth, size, "
                "label, dotted) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        schema_id,
                        node.pre,
                        node.post,
                        node.depth,
                        node.size,
                        node.name.lower(),
                        node.dotted,
                    )
                    for node in nodes
                ],
            )
            self._connection.commit()
        return schema_id

    def add_many(self, schemas: Iterable[Schema], replace: bool = True) -> List[int]:
        """Register many schemas; returns their ids in input order."""
        return [self.add(schema, replace=replace) for schema in schemas]

    def _index_terms_locked(
        self, schema_id: int, vocabulary: Mapping[Tuple[str, str], int]
    ) -> None:
        entries = sorted(vocabulary.items())  # deterministic insert order
        self._connection.executemany(
            "INSERT OR IGNORE INTO corpus_terms (kind, term, df) VALUES (?, ?, 0)",
            [(kind, term) for (kind, term), _ in entries],
        )
        term_ids: List[int] = []
        for chunk in _chunks(entries):
            placeholders = ",".join("(?,?)" for _ in chunk)
            parameters: List[str] = []
            for (kind, term), _ in chunk:
                parameters.extend((kind, term))
            rows = self._connection.execute(
                f"SELECT kind, term, term_id FROM corpus_terms "
                f"WHERE (kind, term) IN (VALUES {placeholders})",
                parameters,
            ).fetchall()
            by_key = {(kind, term): term_id for kind, term, term_id in rows}
            term_ids.extend(by_key[key] for key, _ in chunk)
        self._connection.executemany(
            "INSERT INTO corpus_postings (term_id, schema_id, count) "
            "VALUES (?, ?, ?)",
            [
                (term_id, schema_id, count)
                for term_id, (_, count) in zip(term_ids, entries)
            ],
        )
        self._connection.executemany(
            "UPDATE corpus_terms SET df = df + 1 WHERE term_id = ?",
            [(term_id,) for term_id in term_ids],
        )

    def _remove_locked(self, schema_id: int) -> None:
        self._connection.execute(
            "UPDATE corpus_terms SET df = df - 1 WHERE term_id IN "
            "(SELECT term_id FROM corpus_postings WHERE schema_id = ?)",
            (schema_id,),
        )
        self._connection.execute(
            "DELETE FROM corpus_postings WHERE schema_id = ?", (schema_id,)
        )
        self._connection.execute("DELETE FROM corpus_terms WHERE df <= 0")
        self._connection.execute(
            "DELETE FROM corpus_nodes WHERE schema_id = ?", (schema_id,)
        )
        self._connection.execute(
            "DELETE FROM corpus_schemas WHERE schema_id = ?", (schema_id,)
        )
        self._loaded.pop(schema_id, None)

    def remove(self, name: str) -> bool:
        """Deregister a schema by name; True when something was removed.

        Removal is fully incremental: postings disappear, document
        frequencies are decremented and orphaned vocabulary rows are dropped,
        so subsequent rankings behave as if the schema had never been
        registered.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT schema_id FROM corpus_schemas WHERE name = ?", (name,)
            ).fetchone()
            if row is None:
                return False
            self._remove_locked(int(row[0]))
            self._connection.commit()
        return True

    # -- accessors -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM corpus_schemas"
            ).fetchone()
        return int(row[0])

    def names(self) -> Tuple[str, ...]:
        """All registered schema names, sorted."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT name FROM corpus_schemas ORDER BY name"
            ).fetchall()
        return tuple(name for (name,) in rows)

    def has(self, name: str) -> bool:
        """True if a schema of that name is registered."""
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM corpus_schemas WHERE name = ?", (name,)
            ).fetchone()
        return row is not None

    def load(self, name: str) -> Schema:
        """The registered schema, rebuilt from its stored document (cached).

        Raises
        ------
        SearchError
            If no schema of that name is registered.
        """
        faults.fault_point("corpus.load", key=name)
        with self._lock:
            row = self._connection.execute(
                "SELECT schema_id, digest, document FROM corpus_schemas "
                "WHERE name = ?",
                (name,),
            ).fetchone()
            if row is None:
                raise SearchError(
                    f"no schema named {name!r} in corpus {self._path!r}"
                )
            schema_id, digest = int(row[0]), row[1]
            cached = self._loaded.get(schema_id)
            if cached is not None and cached[0] == digest:
                return cached[1]
        schema = schema_from_json(row[2])
        with self._lock:
            self._loaded[schema_id] = (digest, schema)
            while len(self._loaded) > self.MAX_LOADED_SCHEMAS:
                self._loaded.pop(next(iter(self._loaded)))
        return schema

    def info(self) -> Dict[str, object]:
        """Occupancy statistics of the corpus."""
        with self._lock:
            schemas, paths = self._connection.execute(
                "SELECT COUNT(*), COALESCE(SUM(path_count), 0) FROM corpus_schemas"
            ).fetchone()
            terms = self._connection.execute(
                "SELECT COUNT(*) FROM corpus_terms"
            ).fetchone()[0]
            postings = self._connection.execute(
                "SELECT COUNT(*) FROM corpus_postings"
            ).fetchone()[0]
            nodes = self._connection.execute(
                "SELECT COUNT(*) FROM corpus_nodes"
            ).fetchone()[0]
        return {
            "path": self._path,
            "schemas": int(schemas),
            "paths": int(paths),
            "terms": int(terms),
            "postings": int(postings),
            "nodes": int(nodes),
            "tokenizer_digest": self._tokenizer_digest,
        }

    # -- candidate ranking -----------------------------------------------------

    def rank(
        self,
        vocabulary: Mapping[Tuple[str, str], int],
        limit: Optional[int] = None,
        exclude_digests: Sequence[str] = (),
        exclude_names: Sequence[str] = (),
    ) -> List[CandidateScore]:
        """Rank registered schemas against a query vocabulary -- no matchers run.

        The score of candidate ``c`` is the idf-weighted set overlap

        .. math::

            \\frac{\\sum_{t \\in Q \\cap C} w_{kind(t)} \\cdot
                   \\log(1 + N / df_t)}{\\|Q\\| \\cdot \\|C\\|}

        computed with numpy over the concatenated posting lists of the
        query's terms: one ``np.add.at`` scatter accumulates every posting's
        contribution into its candidate's score.  Ties break by name, so the
        ranking is fully deterministic for a given corpus file.

        Parameters
        ----------
        vocabulary:
            The query's (kind, term) -> count vocabulary
            (:func:`schema_vocabulary` of its profile).
        limit:
            Return at most this many candidates (default: all with a
            positive score).
        exclude_digests / exclude_names:
            Registered schemas to leave out (typically the query itself,
            when it is part of the corpus).
        """
        faults.fault_point("corpus.rank")
        query_norm = vocabulary_norm(vocabulary)
        by_kind: Dict[str, List[str]] = {}
        for kind, term in vocabulary:
            by_kind.setdefault(kind, []).append(term)
        schema_ids: List[int] = []
        contributions: List[float] = []
        with self._lock:
            total = len(self)
            if total == 0:
                return []
            for kind in TERM_KINDS:
                terms = sorted(by_kind.get(kind, ()))
                weight = KIND_WEIGHTS[kind]
                for chunk in _chunks(terms):
                    placeholders = ",".join("?" for _ in chunk)
                    rows = self._connection.execute(
                        f"SELECT t.df, p.schema_id FROM corpus_terms t "
                        f"JOIN corpus_postings p ON p.term_id = t.term_id "
                        f"WHERE t.kind = ? AND t.term IN ({placeholders}) "
                        f"ORDER BY t.term_id, p.schema_id",
                        (kind, *chunk),
                    ).fetchall()
                    for df, schema_id in rows:
                        schema_ids.append(schema_id)
                        contributions.append(
                            weight * float(np.log1p(total / max(int(df), 1)))
                        )
            if not schema_ids:
                return []
            ids = np.asarray(schema_ids, dtype=np.int64)
            values = np.asarray(contributions, dtype=np.float64)
            unique_ids, inverse = np.unique(ids, return_inverse=True)
            scores = np.zeros(len(unique_ids), dtype=np.float64)
            np.add.at(scores, inverse, values)
            details: Dict[int, Tuple[str, str, int, float]] = {}
            for chunk in _chunks([int(i) for i in unique_ids]):
                placeholders = ",".join("?" for _ in chunk)
                for schema_id, name, digest, paths, norm in self._connection.execute(
                    f"SELECT schema_id, name, digest, path_count, norm "
                    f"FROM corpus_schemas WHERE schema_id IN ({placeholders})",
                    chunk,
                ).fetchall():
                    details[int(schema_id)] = (name, digest, int(paths), float(norm))
        excluded_digests = frozenset(exclude_digests)
        excluded_names = frozenset(exclude_names)
        candidates: List[CandidateScore] = []
        for index, schema_id in enumerate(unique_ids):
            name, digest, paths, norm = details[int(schema_id)]
            if digest in excluded_digests or name in excluded_names:
                continue
            candidates.append(
                CandidateScore(
                    name=name,
                    score=float(scores[index]) / (query_norm * norm),
                    schema_id=int(schema_id),
                    digest=digest,
                    path_count=paths,
                )
            )
        candidates.sort(key=lambda c: (-c.score, c.name))
        if limit is not None:
            return candidates[: max(int(limit), 0)]
        return candidates

    def rank_schema(
        self,
        schema: Schema,
        limit: Optional[int] = None,
        profile: Optional[PathSetProfile] = None,
        exclude_self: bool = True,
    ) -> List[CandidateScore]:
        """Rank registered schemas against a query *schema* (convenience).

        ``exclude_self`` drops registered schemas whose content digest equals
        the query's -- searching a corpus that contains the query schema
        itself should surface its best *other* matches, not the identity.
        """
        if profile is None:
            profile = PathSetProfile(schema.paths(), self._tokenizer)
        exclude = (schema_content_digest(schema),) if exclude_self else ()
        return self.rank(
            schema_vocabulary(profile), limit=limit, exclude_digests=exclude
        )

    # -- structural filtering --------------------------------------------------

    def find_subtrees(
        self,
        label: str,
        min_size: int = 1,
        max_size: Optional[int] = None,
        limit: int = 100,
    ) -> List[SubtreeHit]:
        """Schemas containing a subtree with this (lower-cased) root label.

        This is the XPath-accelerator payoff: the pre/post interval encoding
        materialises each node's subtree ``size``, so "a subtree labelled
        ``address`` with 3..12 descendants" is one indexed range scan over
        ``(label, size)`` -- no schema graph is loaded, let alone walked.

        Parameters
        ----------
        label:
            The element name of the subtree root (matched lower-cased).
        min_size / max_size:
            Bounds on the subtree's node count (including the root).
        limit:
            Maximum hits returned (ordered by size descending, then schema
            name and document order).
        """
        if min_size < 1:
            raise SearchError(f"min_size must be >= 1, got {min_size}")
        statement = (
            "SELECT s.name, n.dotted, n.size, n.depth "
            "FROM corpus_nodes n JOIN corpus_schemas s "
            "ON s.schema_id = n.schema_id "
            "WHERE n.label = ? AND n.size >= ?"
        )
        parameters: List[object] = [label.lower(), int(min_size)]
        if max_size is not None:
            statement += " AND n.size <= ?"
            parameters.append(int(max_size))
        statement += " ORDER BY n.size DESC, s.name, n.pre LIMIT ?"
        parameters.append(int(limit))
        with self._lock:
            rows = self._connection.execute(statement, parameters).fetchall()
        return [
            SubtreeHit(schema_name=name, dotted=dotted, size=int(size), depth=int(depth))
            for name, dotted, size, depth in rows
        ]

    def schemas_with_subtree(
        self, label: str, min_size: int = 1, max_size: Optional[int] = None
    ) -> Tuple[str, ...]:
        """Distinct names of schemas containing a matching subtree (sorted)."""
        hits = self.find_subtrees(
            label, min_size=min_size, max_size=max_size, limit=1_000_000
        )
        return tuple(sorted({hit.schema_name for hit in hits}))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemaCorpus(path={self._path!r}, schemas={len(self)})"
