"""Corpus-scale schema search: inverted candidate index + top-K pruned matching.

This subsystem answers the repository-scale question the pairwise API cannot:
*"find the best match targets for this schema among thousands"*.  It is built
from three pieces:

* :mod:`repro.search.intervals` -- pre/post-order interval encoding of a
  schema's path tree (the XPath-accelerator pattern), turning structural
  containment into integers a relational index can range-scan;
* :mod:`repro.search.corpus` -- :class:`SchemaCorpus`, a persistent SQLite
  inverted index over the profile vocabularies (name tokens, n-grams,
  soundex codes) plus the interval tables and the schema documents
  themselves, with idf-weighted numpy candidate ranking;
* :mod:`repro.search.searcher` -- :class:`CorpusSearcher`, which prunes the
  corpus to a top-K survivor pool via the index and runs the full
  :class:`~repro.session.session.MatchSession` pipeline only on survivors.

The subsystem is wired through all three public layers:
``MatchSession.search(schema, k=...)``, ``POST /search`` (+ corpus
registration on ``POST /schemas``) in :mod:`repro.service`, and the
``coma search`` / ``coma corpus`` CLI.  See ``docs/search.md``.
"""

from repro.search.corpus import (
    CandidateScore,
    SchemaCorpus,
    SubtreeHit,
    schema_vocabulary,
    vocabulary_norm,
)
from repro.search.intervals import IntervalNode, interval_encode
from repro.search.searcher import (
    CorpusSearcher,
    SearchResult,
    candidate_pool_size,
)

__all__ = [
    "CandidateScore",
    "CorpusSearcher",
    "IntervalNode",
    "SchemaCorpus",
    "SearchResult",
    "SubtreeHit",
    "candidate_pool_size",
    "interval_encode",
    "schema_vocabulary",
    "vocabulary_norm",
]
