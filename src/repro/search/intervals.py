"""Pre/post-order interval encoding of a schema's path tree.

Structural candidate filtering at corpus scale ("which schemas contain a
subtree shaped like X?") must not walk schema graphs one by one -- at ten
thousand schemas that is exactly the kind of work the inverted index exists
to avoid.  The XPath-accelerator encoding (Grust's pre/post plane) turns the
containment structure of a tree into plain integers a relational index can
range-scan:

* every node occurrence gets a **preorder rank** ``pre`` (document order) and
  a **postorder rank** ``post``;
* node ``d`` is a descendant of node ``a`` *iff* ``pre(d) > pre(a)`` and
  ``post(d) < post(a)`` -- an ancestor's interval strictly contains every
  descendant's;
* because preorder ranks of a subtree are contiguous, the subtree of ``a``
  occupies the window ``pre(a) .. pre(a) + size(a) - 1``.

COMA's match granularity is the *path*: a shared fragment (the paper's
``Address`` type) occurs once per containment context, so the encoded tree is
the path tree -- the DFS unfolding of the schema DAG whose nodes are exactly
``schema.paths()``.  Each :class:`IntervalNode` therefore corresponds 1:1 to
one ``SchemaPath`` (plus one artificial root node), and the (pre, post, size,
depth) columns the :class:`~repro.search.corpus.SchemaCorpus` stores per node
make "schemas sharing a subtree with this label and roughly this many
descendants" an indexed B-tree range query instead of a graph traversal.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.model.path import SchemaPath
from repro.model.schema import Schema


@dataclasses.dataclass(frozen=True)
class IntervalNode:
    """One node occurrence of a schema's path tree in the pre/post plane.

    ``pre`` and ``post`` are 0-based preorder/postorder ranks over the whole
    path tree (including the artificial schema root, which always has
    ``pre == 0``).  ``size`` counts the nodes of the subtree rooted here
    (including the node itself), so the subtree occupies the contiguous
    preorder window ``[pre, pre + size - 1]``.
    """

    pre: int
    post: int
    depth: int
    size: int
    name: str
    dotted: str
    path: Optional[SchemaPath]

    @property
    def is_root(self) -> bool:
        """True for the artificial schema-root node (``pre == 0``)."""
        return self.path is None

    @property
    def leaf_window(self) -> Tuple[int, int]:
        """The closed preorder window ``(pre, pre + size - 1)`` of the subtree."""
        return (self.pre, self.pre + self.size - 1)

    def contains(self, other: "IntervalNode") -> bool:
        """True if ``other`` lies strictly inside this node's subtree.

        This is the XPath-accelerator containment test: a descendant's
        interval is strictly nested inside every ancestor's.

        Examples
        --------
        >>> from repro.datasets.figure1 import load_po1
        >>> nodes = interval_encode(load_po1())
        >>> root, first = nodes[0], nodes[1]
        >>> root.contains(first), first.contains(root)
        (True, False)
        """
        return self.pre < other.pre and other.post < self.post


def interval_encode(schema: Schema) -> Tuple[IntervalNode, ...]:
    """Encode a schema's path tree into pre/post-order interval nodes.

    The result is ordered by ``pre`` (document order) and starts with the
    artificial root node.  ``schema.paths()`` already enumerates the path
    tree in DFS preorder, so the encoding is a single linear pass: a stack of
    open nodes assigns postorder ranks and subtree sizes as soon as the walk
    leaves each subtree.

    Examples
    --------
    >>> from repro.datasets.figure1 import load_po1
    >>> nodes = interval_encode(load_po1())
    >>> len(nodes) == len(load_po1().paths()) + 1
    True
    >>> nodes[0].size == len(nodes)   # the root subtree spans the whole tree
    True
    >>> sorted(n.pre for n in nodes) == list(range(len(nodes)))
    True
    >>> sorted(n.post for n in nodes) == list(range(len(nodes)))
    True
    """
    paths = schema.paths(include_root=True)
    pre_of_depth: List[int] = []  # stack: pre ranks of the currently open chain
    depths: List[int] = []
    records: Dict[int, Tuple[int, int, int]] = {}  # pre -> (post, depth, size)
    post_counter = 0

    def close(upto_depth: int, next_pre: int) -> None:
        nonlocal post_counter
        while depths and depths[-1] >= upto_depth:
            open_pre = pre_of_depth.pop()
            open_depth = depths.pop()
            records[open_pre] = (post_counter, open_depth, next_pre - open_pre)
            post_counter += 1

    for pre, path in enumerate(paths):
        depth = len(path) - 1  # root occurrence has depth 0
        close(depth, pre)
        pre_of_depth.append(pre)
        depths.append(depth)
    close(0, len(paths))

    nodes: List[IntervalNode] = []
    for pre, path in enumerate(paths):
        post, depth, size = records[pre]
        nodes.append(
            IntervalNode(
                pre=pre,
                post=post,
                depth=depth,
                size=size,
                name=path.name,
                dotted=path.dotted(),
                path=None if depth == 0 else path,
            )
        )
    return tuple(nodes)
