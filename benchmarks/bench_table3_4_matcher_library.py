"""Tables 3 and 4: the matcher library inventory and the hybrid matcher defaults.

Table 3 lists the implemented matchers with the schema / auxiliary information
they exploit; Table 4 lists the default constituents and combination strategies
of the hybrid matchers.  Both are regenerated from the live registry and the
hybrid matcher defaults so the documentation can never drift from the code.
"""

from __future__ import annotations

import pytest

from repro.evaluation.report import format_table
from repro.matchers.hybrid import (
    ChildrenMatcher,
    LeavesMatcher,
    NameMatcher,
    NamePathMatcher,
    TypeNameMatcher,
)
from repro.matchers.registry import default_library


@pytest.mark.benchmark(group="table3-4")
def test_table3_matcher_library(benchmark):
    def regenerate():
        library = default_library()
        return [
            {
                "matcher_type": info.kind,
                "matcher": info.name,
                "schema_info": info.schema_info or "-",
                "auxiliary_info": info.auxiliary_info or "-",
            }
            for info in library.entries()
        ]

    rows = benchmark(regenerate)
    print()
    print(format_table(rows, title="Table 3: implemented matchers in the matcher library"))
    names = {row["matcher"] for row in rows}
    # every matcher named in the paper's Table 3 is present
    for expected in ("Affix", "Soundex", "EditDistance", "Synonym", "DataType", "UserFeedback",
                     "Name", "NamePath", "TypeName", "Children", "Leaves", "Schema"):
        assert expected in names
    kinds = {row["matcher"]: row["matcher_type"] for row in rows}
    assert kinds["Name"] == "hybrid" and kinds["Schema"] == "reuse" and kinds["Affix"] == "simple"


@pytest.mark.benchmark(group="table3-4")
def test_table4_hybrid_matcher_defaults(benchmark):
    def regenerate():
        name = NameMatcher()
        type_name = TypeNameMatcher()
        children = ChildrenMatcher()
        leaves = LeavesMatcher()
        return [
            {
                "hybrid_matcher": "Name",
                "default_matchers": "+".join(str(c) for c in name.constituents),
                "aggregation": str(name.aggregation),
                "direction_selection": "Both, Max1",
                "comb_similarity": str(name.combined_similarity),
            },
            {
                "hybrid_matcher": "TypeName",
                "default_matchers": "DataType+Name",
                "aggregation": f"Weighted{type_name.weights}",
                "direction_selection": "-",
                "comb_similarity": "-",
            },
            {
                "hybrid_matcher": "Children",
                "default_matchers": children.leaf_matcher.name,
                "aggregation": "-",
                "direction_selection": "Both, Max1",
                "comb_similarity": str(children.combined_similarity),
            },
            {
                "hybrid_matcher": "Leaves",
                "default_matchers": leaves.leaf_matcher.name,
                "aggregation": "-",
                "direction_selection": "Both, Max1",
                "comb_similarity": str(leaves.combined_similarity),
            },
        ]

    rows = benchmark(regenerate)
    print()
    print(format_table(rows, title="Table 4: construction of hybrid matchers (defaults)"))
    by_name = {row["hybrid_matcher"]: row for row in rows}
    assert by_name["Name"]["default_matchers"] == "Trigram+Synonym"
    assert by_name["Name"]["aggregation"] == "Max"
    assert by_name["TypeName"]["aggregation"].startswith("Weighted(0.7")
    assert by_name["Children"]["default_matchers"] == "TypeName"
    assert by_name["Leaves"]["comb_similarity"] == "Average"
