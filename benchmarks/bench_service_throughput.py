"""Service throughput: requests/sec against the HTTP match service.

Follows the platform-style evaluation methodology of VOODB-like benchmarks:
a fixed request mix replayed at increasing client concurrency, measuring
end-to-end throughput through the real network stack (HTTP over loopback).

Two sweeps are recorded:

1. **Client scaling (thread backend).**  For each client thread count
   (1, 4, 8) a fresh in-process
   :class:`~repro.service.server.MatchServiceServer` (pool of 8 warm
   sessions) serves the same ``/match`` request mix -- two schema pairs (the
   Figure 1 PO1/PO2 pair and a generated ~50-path pair) under three
   cacheable strategies:

   * **cold**: the first pass on a fresh server, every pooled session
     starts with empty profile / cube caches;
   * **warm**: the same mix after unmeasured warm-up passes (best of two
     measured passes), so requests are predominantly served from the
     shards' cube caches (only the combination pipeline re-runs).

2. **Backend sweep (thread vs process).**  For 1 / 2 / 4 workers, the same
   mix is replayed (client threads matched to the worker count) against
   ``backend=thread`` and ``backend=process`` servers, recording per-worker
   warm scaling.  On a 1-core machine the process backend pays IPC for no
   parallelism and lands *below* thread -- the recorded ratio documents
   that honestly.  With >= 2 cores the process backend escapes the GIL and
   the warm ratio is gated at >= 1.5x in :func:`test_service_throughput`.

3. **Front-end sweep (sync vs async).**  The same mix at 1 / 8 / 64
   concurrent clients against the threading front-end
   (``frontend=sync``: one OS thread per connection) and the asyncio
   front-end (``frontend=async``: one event loop, dispatch onto a small
   executor).  The headline ratio is async warm throughput at 64 clients
   over sync warm throughput at 8 threads -- the region where per-connection
   threads start convoying.  Gated at >= 1.5x only when ``cpu_count >= 2``;
   on a 1-core runner both front-ends sit on the same GIL ceiling and the
   measured ratio is recorded honestly without a gate.

Results are recorded in ``BENCH_service.json`` at the repository root,
including the warm-cache throughput scaling from 1 to 8 client threads.
Interpreting the scaling number: matching is GIL-bound CPU work, so the
thread backend's ceiling is ~1 core regardless of ``cpu_count`` (recorded
in the JSON); the process backend's ceiling is the hardware.

Run directly::

    python benchmarks/bench_service_throughput.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -q -s
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.figure1 import PO1_DDL, PO2_XSD  # noqa: E402
from repro.service import (  # noqa: E402
    ServiceClient,
    create_async_server,
    create_server,
)

#: Cacheable strategies exercising different combination tuples.
STRATEGY_SPECS = (
    "All(Average,Both,Thr(0.5)+Delta(0.02),Average)",
    "All(Max,Both,Thr(0.5)+MaxN(1),Average)",
    "All(Average,Both,Thr(0.6),Dice)",
)

CLIENT_THREADS = (1, 4, 8)
POOL_SIZE = 8
REQUESTS_PER_PHASE = 96
WARMUP_PASSES = 2
#: Worker counts of the thread-vs-process backend sweep.
BACKEND_WORKERS = (1, 2, 4)
#: Client concurrency levels of the sync-vs-async front-end sweep.
FRONTEND_CLIENTS = (1, 8, 64)
#: Requests per phase in the front-end sweep (>= 3 per client at the top).
FRONTEND_REQUESTS = 192

RESULT_PATH = REPO_ROOT / "BENCH_service.json"

_FIELDS = ("Id", "Name", "Code", "Date", "Amount", "Status",
           "City", "Street", "Zip", "Country")


def _generated_spec(name: str, sections: int, leaves: int, rotate: int) -> dict:
    """A deterministic dict-spec schema of ``sections * (leaves + 1)`` paths."""
    elements = []
    for section in range(sections):
        children = [
            {
                "name": _FIELDS[(section + leaf + rotate) % len(_FIELDS)],
                "type": "xsd:string",
            }
            for leaf in range(leaves)
        ]
        elements.append({"name": f"Section{section + rotate}", "children": children})
    return {"name": name, "elements": elements}


def _upload_workload(client: ServiceClient) -> list:
    """Upload the benchmark schemas; returns the (source, target) pairs."""
    client.upload_schema(name="PO1", text=PO1_DDL, format="sql")
    client.upload_schema(name="PO2", text=PO2_XSD, format="xsd")
    client.upload_schema(spec=_generated_spec("GenA", sections=5, leaves=9, rotate=0))
    client.upload_schema(spec=_generated_spec("GenB", sections=5, leaves=9, rotate=3))
    return [("PO1", "PO2"), ("GenA", "GenB")]


def _request_mix(pairs, count: int = REQUESTS_PER_PHASE) -> list:
    """The replayed request list: pairs x strategies, round-robin."""
    mix = []
    for index in range(count):
        source, target = pairs[index % len(pairs)]
        spec = STRATEGY_SPECS[index % len(STRATEGY_SPECS)]
        mix.append((source, target, spec))
    return mix


def _run_phase(base_url: str, mix, client_threads: int) -> float:
    """Issue the mix across ``client_threads`` clients; returns the seconds."""
    clients = [ServiceClient(base_url) for _ in range(client_threads)]

    def issue(indexed):
        index, (source, target, spec) = indexed
        result = clients[index % client_threads].match(source, target, strategy=spec)
        if not result["correspondences"]:
            raise AssertionError(f"empty mapping for {source}<->{target} under {spec}")
        return result

    started = time.perf_counter()
    if client_threads == 1:
        for item in enumerate(mix):
            issue(item)
    else:
        with ThreadPoolExecutor(max_workers=client_threads) as executor:
            list(executor.map(issue, enumerate(mix)))
    return time.perf_counter() - started


def _measure(
    client_threads: int, pool_size: int = POOL_SIZE, backend: str = "thread"
) -> dict:
    """Cold and warm requests/sec for one (backend, workers, clients) setting."""
    server = create_server(port=0, pool_size=pool_size, backend=backend)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = None
    try:
        client = ServiceClient(server.url)
        pairs = _upload_workload(client)
        mix = _request_mix(pairs)

        cold_seconds = _run_phase(server.url, mix, client_threads)
        for _ in range(WARMUP_PASSES):  # fill every shard's cube cache
            _run_phase(server.url, mix, client_threads)
        warm_seconds = min(
            _run_phase(server.url, mix, client_threads) for _ in range(2)
        )

        pool = client.stats()["pool"]
        return {
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "cold_rps": round(len(mix) / cold_seconds, 2),
            "warm_rps": round(len(mix) / warm_seconds, 2),
            "cube_hits": pool["cube_hits"],
            "cube_misses": pool["cube_misses"],
        }
    finally:
        if client is not None:
            try:
                client.shutdown()
            except Exception:
                server.shutdown()  # don't mask the original failure
        else:
            server.shutdown()
        thread.join(timeout=10)
        server.server_close()


def collect_backend_sweep() -> dict:
    """Thread-vs-process warm throughput for 1/2/4 workers (clients = workers)."""
    sweep: dict = {}
    for backend in ("thread", "process"):
        by_workers = {}
        for workers in BACKEND_WORKERS:
            by_workers[str(workers)] = _measure(
                client_threads=workers, pool_size=workers, backend=backend
            )
        sweep[backend] = by_workers
    top = str(BACKEND_WORKERS[-1])
    sweep["process_over_thread_warm"] = {
        str(workers): round(
            sweep["thread"][str(workers)]["warm_seconds"]
            / sweep["process"][str(workers)]["warm_seconds"],
            2,
        )
        for workers in BACKEND_WORKERS
    }
    sweep["process_over_thread_warm_at_max_workers"] = (
        sweep["process_over_thread_warm"][top]
    )
    return sweep


def _measure_frontend(frontend: str, client_threads: int) -> dict:
    """Cold and warm requests/sec for one (front-end, clients) setting.

    Both front-ends get the same pool (thread backend, ``POOL_SIZE`` warm
    shards) and the same mix; only the transport tier differs.  The async
    server's admission bound is raised above the top client count so
    backpressure rejections never pollute the measurement.
    """
    if frontend == "async":
        server = create_async_server(
            port=0, pool_size=POOL_SIZE, max_queue=4 * max(FRONTEND_CLIENTS)
        )
        server_thread = server.run_in_thread()
        stop = None
    else:
        server = create_server(port=0, pool_size=POOL_SIZE)
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()
        stop = server.shutdown
    client = None
    try:
        client = ServiceClient(server.url)
        pairs = _upload_workload(client)
        mix = _request_mix(pairs, count=FRONTEND_REQUESTS)

        cold_seconds = _run_phase(server.url, mix, client_threads)
        for _ in range(WARMUP_PASSES):
            _run_phase(server.url, mix, client_threads)
        warm_seconds = min(
            _run_phase(server.url, mix, client_threads) for _ in range(2)
        )
        return {
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "cold_rps": round(len(mix) / cold_seconds, 2),
            "warm_rps": round(len(mix) / warm_seconds, 2),
        }
    finally:
        if client is not None:
            try:
                client.shutdown()  # both front-ends honour POST /shutdown
            except Exception:
                if stop is not None:
                    stop()
                else:
                    server.request_shutdown()
        elif stop is not None:
            stop()
        else:
            server.request_shutdown()
        server_thread.join(timeout=30)
        if frontend == "sync":
            server.server_close()


def collect_frontend_sweep() -> dict:
    """Sync-vs-async warm throughput at 1/8/64 concurrent clients."""
    sweep: dict = {}
    for frontend in ("sync", "async"):
        sweep[frontend] = {
            str(clients): _measure_frontend(frontend, clients)
            for clients in FRONTEND_CLIENTS
        }
    # The headline: the async front-end at high fan-in vs the sync front-end
    # at the concurrency it is comfortable with (one thread per connection).
    sweep["async_64_over_sync_8_warm"] = round(
        sweep["async"][str(FRONTEND_CLIENTS[-1])]["warm_rps"]
        / sweep["sync"]["8"]["warm_rps"],
        2,
    )
    sweep["async_over_sync_warm"] = {
        str(clients): round(
            sweep["async"][str(clients)]["warm_rps"]
            / sweep["sync"][str(clients)]["warm_rps"],
            2,
        )
        for clients in FRONTEND_CLIENTS
    }
    return sweep


def collect_results() -> dict:
    by_threads = {}
    for client_threads in CLIENT_THREADS:
        by_threads[str(client_threads)] = _measure(client_threads)
    lowest = by_threads[str(CLIENT_THREADS[0])]
    highest = by_threads[str(CLIENT_THREADS[-1])]
    return {
        "benchmark": "service_throughput",
        "description": (
            "HTTP match service over loopback: /match requests/sec at "
            "1/4/8 client threads, cold vs warm cache "
            f"(pool of {POOL_SIZE} sessions, {REQUESTS_PER_PHASE} requests per "
            f"phase), plus a thread-vs-process backend sweep at "
            f"{'/'.join(str(w) for w in BACKEND_WORKERS)} workers and a "
            f"sync-vs-async front-end sweep at "
            f"{'/'.join(str(c) for c in FRONTEND_CLIENTS)} clients"
        ),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "pool_size": POOL_SIZE,
        "requests_per_phase": REQUESTS_PER_PHASE,
        "pairs": 2,
        "strategies": len(STRATEGY_SPECS),
        "client_threads": by_threads,
        "warm_scaling_1_to_8": round(lowest["warm_seconds"] / highest["warm_seconds"], 2),
        "backend_sweep": collect_backend_sweep(),
        "frontend_sweep": collect_frontend_sweep(),
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def _print_results(results: dict) -> None:
    for threads, numbers in results["client_threads"].items():
        print(
            f"{threads:>2} client thread(s): "
            f"cold {numbers['cold_rps']:7.1f} req/s, "
            f"warm {numbers['warm_rps']:7.1f} req/s "
            f"(hits {numbers['cube_hits']}, misses {numbers['cube_misses']})"
        )
    print(f"warm-cache throughput scaling 1 -> {CLIENT_THREADS[-1]} threads: "
          f"{results['warm_scaling_1_to_8']:.2f}x")
    sweep = results["backend_sweep"]
    for backend in ("thread", "process"):
        for workers, numbers in sweep[backend].items():
            print(
                f"backend={backend:<7} workers={workers}: "
                f"warm {numbers['warm_rps']:7.1f} req/s "
                f"(cold {numbers['cold_rps']:7.1f} req/s)"
            )
    print(
        f"process-over-thread warm speedup at {BACKEND_WORKERS[-1]} workers: "
        f"{sweep['process_over_thread_warm_at_max_workers']:.2f}x "
        f"(cpu_count={results['cpu_count']})"
    )
    frontends = results["frontend_sweep"]
    for frontend in ("sync", "async"):
        for clients, numbers in frontends[frontend].items():
            print(
                f"frontend={frontend:<5} clients={clients:>2}: "
                f"warm {numbers['warm_rps']:7.1f} req/s "
                f"(cold {numbers['cold_rps']:7.1f} req/s)"
            )
    print(
        f"async@{FRONTEND_CLIENTS[-1]}-over-sync@8 warm: "
        f"{frontends['async_64_over_sync_8_warm']:.2f}x "
        f"(cpu_count={results['cpu_count']})"
    )


def test_service_throughput():
    """Warm-cache throughput must not degrade when clients scale 1 -> 8."""
    results = collect_results()
    write_results(results)
    _print_results(results)
    for numbers in results["client_threads"].values():
        assert numbers["cold_rps"] > 0 and numbers["warm_rps"] > 0
        # warm phases are served mostly from the cube caches
        assert numbers["cube_hits"] > numbers["cube_misses"]
    # Scaling clients 1 -> 8 must not collapse throughput: flat is the
    # single-core ceiling (GIL-bound match work), multi-core machines gain.
    # The pre-fix failure mode this guards was a 4-5x collapse (convoying on
    # one pool shard + dropped connection bursts).
    assert results["warm_scaling_1_to_8"] >= 0.75, (
        f"warm throughput collapsed under concurrency: "
        f"{results['warm_scaling_1_to_8']}x"
    )
    # The process backend exists to break the GIL ceiling, so with real
    # parallelism available it must beat the thread backend warm.  On 1-core
    # runners the ratio is recorded (IPC cost, no parallelism to win) but
    # not gated -- there is no ceiling to break.
    sweep = results["backend_sweep"]
    for backend in ("thread", "process"):
        for numbers in sweep[backend].values():
            assert numbers["warm_rps"] > 0
    if (os.cpu_count() or 1) >= 2:
        ratio = sweep["process_over_thread_warm_at_max_workers"]
        assert ratio >= 1.5, (
            f"process backend only reached {ratio}x over thread warm at "
            f"{BACKEND_WORKERS[-1]} workers on a {os.cpu_count()}-core machine"
        )
    # The async front-end exists to survive high connection fan-in: at 64
    # clients it must comfortably outrun the per-connection-thread front-end
    # at its 8-thread comfort zone.  On a 1-core runner both sit on the same
    # GIL ceiling, so the ratio is recorded honestly but not gated.
    frontends = results["frontend_sweep"]
    for frontend in ("sync", "async"):
        for numbers in frontends[frontend].values():
            assert numbers["warm_rps"] > 0
    if (os.cpu_count() or 1) >= 2:
        ratio = frontends["async_64_over_sync_8_warm"]
        assert ratio >= 1.5, (
            f"async front-end at {FRONTEND_CLIENTS[-1]} clients only reached "
            f"{ratio}x over sync at 8 threads on a {os.cpu_count()}-core machine"
        )


if __name__ == "__main__":
    collected = collect_results()
    destination = write_results(collected)
    _print_results(collected)
    print(f"\nresults written to {destination}")
