"""Figure 11: quality of the single matchers (no-reuse and reuse).

Regenerates the average Precision / Recall / Overall of the five hybrid
matchers and the two Schema reuse variants under the default combination
strategy, sorted by Overall as in the paper's figure.
"""

from __future__ import annotations

import pytest

from repro.combination.aggregation import AVERAGE
from repro.combination.direction import BOTH
from repro.combination.selection import CombinedSelection, MaxDelta, Threshold
from repro.evaluation.analysis import single_matcher_quality
from repro.evaluation.grid import SeriesSpec
from repro.evaluation.report import format_table

_SINGLE_MATCHERS = ("NamePath", "TypeName", "Leaves", "Children", "Name", "SchemaM", "SchemaA")


def _default_spec(matcher: str) -> SeriesSpec:
    return SeriesSpec(
        matchers=(matcher,),
        aggregation=AVERAGE,
        direction=BOTH,
        selection=CombinedSelection([Threshold(0.5), MaxDelta(0.02)]),
    )


@pytest.mark.benchmark(group="figure11")
def test_figure11_single_matcher_quality(benchmark, campaign):
    rows = benchmark.pedantic(
        lambda: single_matcher_quality(campaign, _SINGLE_MATCHERS, _default_spec),
        iterations=1, rounds=1,
    )
    print()
    print(format_table(
        [row.as_row() for row in rows],
        title="Figure 11: quality of single matchers (avg Precision / Recall / Overall)",
    ))

    by_name = {row.label: row.quality for row in rows}
    hybrid_overalls = {name: by_name[name].overall for name in
                       ("Name", "NamePath", "TypeName", "Children", "Leaves")}
    # NamePath is the best no-reuse single matcher (paper: best Precision and Overall).
    assert max(hybrid_overalls, key=hybrid_overalls.get) == "NamePath"
    assert by_name["NamePath"].precision == max(
        by_name[n].precision for n in hybrid_overalls
    )
    # Context-blind matchers produce many false positives -> low or negative Overall.
    assert by_name["Name"].overall < by_name["NamePath"].overall
    assert by_name["Leaves"].overall < by_name["NamePath"].overall
    # The Schema reuse matchers are the best single matchers, and manual reuse
    # beats reuse of automatically derived mappings.
    assert by_name["SchemaM"].overall > max(hybrid_overalls.values())
    assert by_name["SchemaM"].overall > by_name["SchemaA"].overall
    assert by_name["SchemaM"].precision >= 0.8
