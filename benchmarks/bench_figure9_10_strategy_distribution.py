"""Figures 9 and 10: distribution of no-reuse series over Overall ranges.

Figure 9 is the histogram of series per average-Overall range; Figure 10 shows,
per combination-strategy dimension (aggregation, direction, selection), the
share of series in each range.  Both are regenerated from the evaluated grid
of no-reuse series.
"""

from __future__ import annotations

import pytest

from repro.evaluation.analysis import overall_distribution, strategy_shares
from repro.evaluation.report import format_bar_chart, format_grouped_bars


@pytest.mark.benchmark(group="figure9")
def test_figure9_overall_distribution(benchmark, no_reuse_results):
    distribution = benchmark(lambda: overall_distribution(no_reuse_results))
    print()
    print(format_bar_chart(
        [(label, float(count)) for label, count in distribution],
        title=f"Figure 9: distribution of {len(no_reuse_results)} no-reuse series over Overall ranges",
        value_format="{:.0f}",
    ))

    counts = dict(distribution)
    assert sum(counts.values()) == len(no_reuse_results)
    # the paper: the bulk of the series performs poorly (negative Overall), only
    # a small fraction reaches the top ranges
    assert counts["Min-0.0"] == max(counts.values())
    top = counts.get("0.6-0.7", 0) + counts.get("0.7-0.8", 0) + counts.get("0.8-1.0", 0)
    assert top < sum(counts.values()) * 0.25


@pytest.mark.benchmark(group="figure10")
def test_figure10_strategy_shares(benchmark, no_reuse_results):
    def regenerate():
        return {
            "aggregation": strategy_shares(no_reuse_results, lambda spec: str(spec.aggregation)),
            "direction": strategy_shares(no_reuse_results, lambda spec: str(spec.direction)),
            "selection": strategy_shares(no_reuse_results, lambda spec: str(spec.selection)),
        }

    shares = benchmark(regenerate)
    for dimension, series in shares.items():
        print()
        print(format_grouped_bars(series, title=f"Figure 10 ({dimension}): share of series per Overall range"))

    def best_bucket(series):
        """Index of the highest Overall range in which the strategy still appears."""
        populated = [i for i, (_, share) in enumerate(series) if share > 0]
        return max(populated) if populated else -1

    aggregation = shares["aggregation"]
    direction = shares["direction"]
    # Figure 10a: Max is confined to low Overall ranges; Average reaches the highest ranges.
    assert best_bucket(aggregation["Average"]) >= best_bucket(aggregation["Max"])
    # Figure 10b: Both reaches at least as high as the directional strategies,
    # and SmallLarge never beats LargeSmall's reach.
    assert best_bucket(direction["Both"]) >= best_bucket(direction["LargeSmall"])
    assert best_bucket(direction["Both"]) >= best_bucket(direction["SmallLarge"])
