"""Figure 8: problem size of the 10 match tasks (matches, paths, schema similarity).

Regenerates the per-task series the paper plots: the number of real
correspondences, the number of matched paths, the total number of paths and the
Dice schema similarity.
"""

from __future__ import annotations

import pytest

from repro.evaluation.report import format_table


@pytest.mark.benchmark(group="figure8")
def test_figure8_problem_size(benchmark, tasks):
    def regenerate():
        return [
            {
                "task": task.name,
                "matches": task.match_count,
                "matched_paths": task.matched_path_count,
                "all_paths": task.total_paths,
                "schema_similarity": task.schema_similarity,
            }
            for task in tasks
        ]

    rows = benchmark(regenerate)
    print()
    print(format_table(rows, title="Figure 8: problem size in schema matching tasks"))

    assert len(rows) == 10
    # the paper: schema similarity is moderate (mostly around 0.5) and the number
    # of paths grows from the smallest task (1<->2) to the largest (4<->5)
    similarities = [row["schema_similarity"] for row in rows]
    assert all(0.3 <= value <= 0.85 for value in similarities)
    by_task = {row["task"]: row for row in rows}
    assert by_task["4<->5"]["all_paths"] == max(row["all_paths"] for row in rows)
    assert by_task["1<->2"]["all_paths"] == min(row["all_paths"] for row in rows)
    # matched paths never exceed all paths, matches never exceed matched paths pairs
    for row in rows:
        assert row["matched_paths"] <= row["all_paths"]
