"""Ablation benches for the design choices called out in DESIGN.md.

* combined-similarity ablation: Average vs Dice inside the hybrid matchers
  (Section 7.2 reports a small degradation with Dice),
* MatchCompose composition ablation: Average vs multiplication (Section 5.1's
  argument that products degrade too quickly),
* leaf-matcher ablation for the Leaves matcher: TypeName (default) vs Name.
"""

from __future__ import annotations

import pytest

from repro.combination.aggregation import AVERAGE
from repro.combination.direction import BOTH
from repro.combination.selection import CombinedSelection, MaxDelta, Threshold
from repro.core.match_operation import build_context
from repro.datasets.gold_standard import load_task
from repro.evaluation.grid import SeriesSpec
from repro.evaluation.metrics import evaluate_mapping
from repro.evaluation.report import format_table
from repro.matchers.hybrid import LeavesMatcher, NameMatcher
from repro.matchers.reuse.compose import match_compose
from repro.matchers.reuse.provider import StoredMapping
from repro.model.mapping import Correspondence, MatchResult


def _default_selection():
    return CombinedSelection([Threshold(0.5), MaxDelta(0.02)])


@pytest.mark.benchmark(group="ablation")
def test_ablation_combined_similarity_average_vs_dice(benchmark, campaign):
    """Average vs Dice as the hybrid-internal combined similarity (Section 7.2)."""
    matchers = ("Name", "NamePath", "TypeName", "Children", "Leaves")

    def evaluate():
        results = {}
        for variant in ("Average", "Dice"):
            spec = SeriesSpec(matchers=matchers, aggregation=AVERAGE, direction=BOTH,
                              selection=_default_selection(), combined_similarity=variant)
            results[variant] = campaign.evaluate_series(spec).average
        return results

    results = benchmark.pedantic(evaluate, iterations=1, rounds=1)
    rows = [
        {"combined_similarity": variant, "precision": quality.precision,
         "recall": quality.recall, "overall": quality.overall}
        for variant, quality in results.items()
    ]
    print()
    print(format_table(rows, title="Ablation: hybrid-internal combined similarity (All matchers)"))
    # the paper observes some degradation of match quality using Dice compared to Average
    assert results["Average"].overall >= results["Dice"].overall - 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_matchcompose_average_vs_product(benchmark):
    """Average vs multiplicative composition in MatchCompose (Section 5.1)."""
    first = StoredMapping("A", "B", (("A.contactFirstName", "B.Name", 0.5),))
    second = StoredMapping("B", "C", (("B.Name", "C.firstName", 0.7),))

    def compose_both():
        return (
            match_compose(first, second, "average").rows[0][2],
            match_compose(first, second, "product").rows[0][2],
        )

    average_value, product_value = benchmark(compose_both)
    print()
    print(format_table(
        [{"composition": "Average", "similarity": average_value},
         {"composition": "Product", "similarity": product_value}],
        title="Ablation: MatchCompose composition function (paper's 0.5 / 0.7 example)",
    ))
    assert average_value == pytest.approx(0.6)
    assert product_value == pytest.approx(0.35)
    assert average_value > product_value


@pytest.mark.benchmark(group="ablation")
def test_ablation_leaves_leaf_matcher(benchmark):
    """Leaves with the default TypeName leaf matcher vs a Name leaf matcher."""
    task = load_task(1, 2)
    context = build_context(task.source, task.target)
    selection = _default_selection()

    def evaluate(leaf_matcher):
        matcher = LeavesMatcher(leaf_matcher=leaf_matcher)
        matrix = matcher.compute(task.source.paths(), task.target.paths(), context)
        pairs = BOTH.select_pairs(matrix, selection)
        predicted = MatchResult(task.source, task.target)
        for source, target, similarity in pairs:
            predicted.add(Correspondence(source, target, similarity))
        return evaluate_mapping(predicted, task.reference)

    def run():
        return {
            "TypeName (default)": evaluate(None),
            "Name": evaluate(NameMatcher()),
        }

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        {"leaf_matcher": label, "precision": q.precision, "recall": q.recall, "overall": q.overall}
        for label, q in results.items()
    ]
    print()
    print(format_table(rows, title="Ablation: leaf-level matcher used by Leaves (task 1<->2)"))
    # TypeName incorporates data-type evidence; it should not be worse than Name alone.
    assert results["TypeName (default)"].overall >= results["Name"].overall - 0.05
