"""Table 5: characteristics of the five purchase-order test schemas.

Regenerates max depth, node / path counts and the inner / leaf breakdown for
the bundled test schemas and compares the *relative* structure against the
paper's Table 5 (the schemas are substitutions, so absolute counts differ; the
ordering, fragment-sharing behaviour and rough magnitudes must hold).
"""

from __future__ import annotations

import pytest

from repro.datasets.purchase_orders import load_all_schemas, schema_names
from repro.evaluation.report import format_table

#: The paper's Table 5 values, for side-by-side reporting.
_PAPER_TABLE5 = {
    "CIDX": {"max_depth": 4, "nodes": 40, "paths": 40},
    "Excel": {"max_depth": 4, "nodes": 35, "paths": 54},
    "Noris": {"max_depth": 4, "nodes": 46, "paths": 65},
    "Paragon": {"max_depth": 6, "nodes": 74, "paths": 80},
    "Apertum": {"max_depth": 5, "nodes": 80, "paths": 145},
}


@pytest.mark.benchmark(group="table5")
def test_table5_schema_characteristics(benchmark):
    def regenerate():
        rows = []
        for name, schema in load_all_schemas().items():
            statistics = schema.statistics()
            row = statistics.as_row()
            row["paper_nodes"] = _PAPER_TABLE5[name]["nodes"]
            row["paper_paths"] = _PAPER_TABLE5[name]["paths"]
            rows.append(row)
        return rows

    rows = benchmark(regenerate)
    print()
    print(format_table(rows, title="Table 5: characteristics of test schemas (measured vs paper)"))

    by_name = {row["schema"]: row for row in rows}
    order = schema_names()
    # CIDX is the smallest schema, Apertum has the most paths (as in the paper).
    assert by_name["CIDX"]["paths"] == min(by_name[n]["paths"] for n in order)
    assert by_name["Apertum"]["paths"] == max(by_name[n]["paths"] for n in order)
    # Schemas with shared fragments have more paths than nodes (all but CIDX).
    assert by_name["CIDX"]["paths"] == by_name["CIDX"]["nodes"]
    for name in ("Excel", "Noris", "Apertum"):
        assert by_name[name]["paths"] > by_name[name]["nodes"]
    # Paragon is the deepest schema, as in the paper.
    assert by_name["Paragon"]["max_depth"] == max(by_name[n]["max_depth"] for n in order)
    # Sizes stay in the paper's ballpark (within a factor of ~1.5).
    for name in order:
        measured = by_name[name]["paths"]
        paper = _PAPER_TABLE5[name]["paths"]
        assert 0.6 * paper <= measured <= 1.5 * paper
