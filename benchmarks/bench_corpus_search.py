"""Corpus search: pruned top-K matching vs. exhaustive ``match_many``.

The search subsystem only earns its keep if the inverted candidate index
prunes a large corpus to a small survivor pool *without losing the answers*.
This benchmark measures both halves of that claim at growing corpus sizes:

* the five gold purchase-order schemas are seeded among deterministic decoy
  mutants (:func:`repro.datasets.generators.generate_corpus`) at corpus
  sizes 100 / 500 / 1000;
* **recall@10**: for every gold-standard task, ``search(source, k=10)``
  must surface the gold target — gated at 1.0 for the largest corpus;
* **speedup**: for reference queries, the pruned search is timed against an
  exhaustive ``match_many`` of the query vs. *every* registered schema —
  gated >= 5x at 1000 schemas — and the pruned top-1 must equal the
  exhaustive full-pipeline top-1.

Results are recorded in ``BENCH_search.json`` at the repository root.

Run directly::

    python benchmarks/bench_corpus_search.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_corpus_search.py -q -s
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

RESULT_PATH = REPO_ROOT / "BENCH_search.json"

#: Corpus sizes to sweep (decoy count; the five gold schemas ride on top).
CORPUS_SIZES = (100, 500, 1000)

#: The size whose gates (speedup, recall) are enforced.
GATED_SIZE = 1000

#: Gold tasks timed against the exhaustive reference per corpus size (every
#: exhaustive query costs ~corpus-size full matches, so this stays small).
EXHAUSTIVE_QUERIES = 2

#: Gold tasks checked for recall@10 at the smaller sizes; the gated size
#: always checks every task.
RECALL_QUERIES = 4

#: Decoy generation seed (deterministic corpus across runs).
SEED = 11

#: Decoy mutation rates.  Decoys must be *decoys*: at the generator default
#: (rename_rate=0.7) every base spawns hundreds of near-duplicates that keep
#: 30% of the original names, and a mutant of the *query's own base*
#: legitimately out-matches the cross-vendor gold target even under the
#: exhaustive full pipeline -- recall-vs-gold is unmeasurable in that
#: regime.  At 0.85/0.5 the mutants are plausible off-domain schemas and the
#: gold pairs stay the true best answers.  The near-duplicate regime is
#: still recorded (index-only, cheap) as ``near_duplicate_regime`` below.
RENAME_RATE = 0.85
DRIFT_RATE = 0.5

K = 10

#: ``match_many`` chunk for the exhaustive reference: keeps similarity
#: scalars instead of holding a thousand cube-carrying outcomes alive.
CHUNK = 50


def _gold_tasks():
    from repro.datasets.gold_standard import load_all_tasks

    return load_all_tasks()


def _build_corpus(size: int, tokenizer, rename_rate=RENAME_RATE,
                  drift_rate=DRIFT_RATE):
    from repro.datasets.generators import generate_corpus
    from repro.datasets.purchase_orders import load_all_schemas
    from repro.search import SchemaCorpus

    corpus = SchemaCorpus(":memory:", tokenizer=tokenizer)
    corpus.add_many(load_all_schemas().values())
    corpus.add_many(
        generate_corpus(
            size, seed=SEED, rename_rate=rename_rate, drift_rate=drift_rate
        )
    )
    return corpus


def _near_duplicate_regime(size: int) -> dict:
    """Index-only probe of the adversarial near-duplicate corpus.

    With generator-default mutation rates the corpus floods with mutants
    keeping 30% of each base's exact names; this records how deep the gold
    targets sink in the *candidate index* ranking there — i.e. how wide
    ``candidates=`` must be for the pruned search to keep them reachable.
    No full matches run, so this stays cheap at any size.
    """
    from repro.search import CorpusSearcher
    from repro.session import MatchSession

    session = MatchSession()
    corpus = _build_corpus(size, session.tokenizer,
                           rename_rate=0.7, drift_rate=0.3)
    searcher = CorpusSearcher(session, corpus)
    worst = 0
    for task in _gold_tasks():
        ranked = searcher.rank(task.source, exclude_self=True)
        position = next(
            index for index, candidate in enumerate(ranked)
            if candidate.name == task.target.name
        )
        worst = max(worst, position)
    corpus.close()
    session.close()
    return {
        "rename_rate": 0.7,
        "drift_rate": 0.3,
        "corpus_schemas": size + 5,
        "worst_gold_index_rank": worst,
        "candidates_needed_for_full_recall": worst + 1,
    }


def _exhaustive_rank(session, corpus, query):
    """The reference: full-pipeline similarity against every corpus schema."""
    names = [name for name in corpus.names() if name != query.name]
    scored = []
    for start in range(0, len(names), CHUNK):
        chunk = names[start:start + CHUNK]
        outcomes = session.match_many(
            [(query, corpus.load(name)) for name in chunk]
        )
        scored.extend(
            (name, outcome.schema_similarity)
            for name, outcome in zip(chunk, outcomes)
        )
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored


def _measure_size(size: int) -> dict:
    from repro.search import CorpusSearcher
    from repro.session import MatchSession

    session = MatchSession()
    corpus = _build_corpus(size, session.tokenizer)
    searcher = CorpusSearcher(session, corpus)
    tasks = _gold_tasks()

    # -- recall@10 over the gold standard (pruned path only) ------------------
    recall_tasks = tasks if size == GATED_SIZE else tasks[:RECALL_QUERIES]
    hits = 0
    pruned_seconds = 0.0
    for task in recall_tasks:
        started = time.perf_counter()
        results = searcher.search(task.source, k=K)
        pruned_seconds += time.perf_counter() - started
        if task.target.name in {hit.name for hit in results}:
            hits += 1
    recall = hits / len(recall_tasks)

    # -- pruned vs exhaustive on the reference queries ------------------------
    # A fresh session per mode: neither side inherits the other's caches.
    exhaustive_session = MatchSession()
    exhaustive_seconds = 0.0
    timed_pruned_seconds = 0.0
    top1_agreements = 0
    for task in tasks[:EXHAUSTIVE_QUERIES]:
        started = time.perf_counter()
        pruned = searcher.search(task.source, k=K)
        timed_pruned_seconds += time.perf_counter() - started

        started = time.perf_counter()
        exhaustive = _exhaustive_rank(exhaustive_session, corpus, task.source)
        exhaustive_seconds += time.perf_counter() - started
        if pruned and pruned[0].name == exhaustive[0][0]:
            top1_agreements += 1
    exhaustive_session.close()

    info = corpus.info()
    corpus.close()
    session.close()
    return {
        "corpus_schemas": info["schemas"],
        "index_terms": info["terms"],
        "index_postings": info["postings"],
        "recall_at_10": round(recall, 4),
        "recall_tasks": len(recall_tasks),
        "pruned_seconds_per_query": round(pruned_seconds / len(recall_tasks), 4),
        "exhaustive_queries": EXHAUSTIVE_QUERIES,
        "exhaustive_seconds_per_query": round(
            exhaustive_seconds / EXHAUSTIVE_QUERIES, 4
        ),
        "speedup": round(exhaustive_seconds / timed_pruned_seconds, 2),
        "top1_agreements": top1_agreements,
    }


def collect_results() -> dict:
    sizes = {}
    for size in CORPUS_SIZES:
        sizes[str(size)] = _measure_size(size)
    return {
        "benchmark": "corpus_search",
        "description": (
            "gold purchase-order schemas seeded among generated decoy corpora: "
            "pruned top-K search (inverted candidate index + survivor-pool "
            "matching) vs exhaustive match_many over every registered schema"
        ),
        "python": platform.python_version(),
        "k": K,
        "seed": SEED,
        "rename_rate": RENAME_RATE,
        "drift_rate": DRIFT_RATE,
        "gated_size": GATED_SIZE,
        "sizes": sizes,
        "near_duplicate_regime": _near_duplicate_regime(GATED_SIZE),
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def _print_results(results: dict) -> None:
    for size, row in results["sizes"].items():
        print(
            f"corpus {size:>5}: recall@10 {row['recall_at_10']:.2f} "
            f"({row['recall_tasks']} tasks), pruned "
            f"{row['pruned_seconds_per_query']:.2f}s/query, exhaustive "
            f"{row['exhaustive_seconds_per_query']:.2f}s/query, "
            f"speedup {row['speedup']:.1f}x, "
            f"top-1 agreement {row['top1_agreements']}/{row['exhaustive_queries']}"
        )
    regime = results.get("near_duplicate_regime")
    if regime:
        print(
            f"near-duplicate regime (rename {regime['rename_rate']}): worst "
            f"gold index rank {regime['worst_gold_index_rank']} of "
            f"{regime['corpus_schemas']} -> candidates >= "
            f"{regime['candidates_needed_for_full_recall']} for full recall"
        )


def test_corpus_search_gates():
    """At 1000 schemas: >= 5x over exhaustive, recall@10 = 1.0, top-1 agrees."""
    results = collect_results()
    write_results(results)
    _print_results(results)
    gated = results["sizes"][str(GATED_SIZE)]
    assert gated["speedup"] >= 5.0, (
        f"expected >= 5x pruned-search speedup at {GATED_SIZE} schemas, "
        f"got {gated['speedup']}x"
    )
    assert gated["recall_at_10"] == 1.0, (
        f"expected recall@10 = 1.0 on the gold tasks at {GATED_SIZE} schemas, "
        f"got {gated['recall_at_10']}"
    )
    assert gated["top1_agreements"] == gated["exhaustive_queries"], (
        "the pruned top-1 must equal the exhaustive full-pipeline top-1"
    )
    # The smaller corpora must also keep the gold targets in the top-10.
    for size, row in results["sizes"].items():
        assert row["recall_at_10"] == 1.0, (size, row)
    regime = results["near_duplicate_regime"]
    assert regime["candidates_needed_for_full_recall"] >= 1


if __name__ == "__main__":
    collected = collect_results()
    destination = write_results(collected)
    _print_results(collected)
    print(f"\nresults written to {destination}")
