"""Engine speed-up: batch MatchEngine vs. the pairwise reference path.

Times the full default match operation (all five hybrid matchers) on
generated purchase-order-like schema pairs spanning the Figure 8 problem
sizes (roughly 30 to 150 paths per schema, as in the paper's 10 match tasks),
once through the vectorized batch engine and once through the pairwise
reference implementation, and records the wall-clock speedups in
``BENCH_engine.json`` at the repository root so the performance trajectory is
tracked from PR to PR.

Run directly::

    python benchmarks/bench_engine_speedup.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_speedup.py -q -s
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.match_operation import build_context  # noqa: E402
from repro.core.strategy import default_strategy  # noqa: E402
from repro.datasets.generators import generate_pair  # noqa: E402
from repro.engine import MatchEngine  # noqa: E402

#: Section counts of the generated pairs; with 6 fields per section the
#: per-schema path counts (28, 56, 84, 112) span the Figure 8 task sizes.
SECTION_SIZES = (4, 8, 12, 16)
FIELDS_PER_SECTION = 6
REPEATS = 3

RESULT_PATH = REPO_ROOT / "BENCH_engine.json"


def _time_engine(engine: MatchEngine, pair, repeats: int = REPEATS) -> float:
    """Best-of-N wall clock of one full matcher execution (fresh context each run)."""
    best = float("inf")
    for _ in range(repeats):
        matchers = default_strategy().resolve_matchers(None)
        context = build_context(pair.source, pair.target)
        started = time.perf_counter()
        engine.execute(matchers, context)
        best = min(best, time.perf_counter() - started)
    return best


def collect_results() -> dict:
    """Time both execution paths over the size sweep."""
    batch_engine = MatchEngine()
    pairwise_engine = MatchEngine(use_batch=False)
    rows = []
    for sections in SECTION_SIZES:
        pair = generate_pair(
            sections=sections, fields_per_section=FIELDS_PER_SECTION, seed=23
        )
        paths = len(pair.source.paths()) + len(pair.target.paths())
        batch_seconds = _time_engine(batch_engine, pair)
        pairwise_seconds = _time_engine(pairwise_engine, pair)
        rows.append(
            {
                "sections": sections,
                "fields_per_section": FIELDS_PER_SECTION,
                "total_paths": paths,
                "batch_seconds": round(batch_seconds, 4),
                "pairwise_seconds": round(pairwise_seconds, 4),
                "speedup": round(pairwise_seconds / batch_seconds, 2),
            }
        )
    return {
        "benchmark": "engine_speedup",
        "description": (
            "Wall-clock of the default match operation (5 hybrid matchers): "
            "batch MatchEngine vs. pairwise reference, Figure 8 problem sizes"
        ),
        "python": platform.python_version(),
        "repeats": REPEATS,
        "sizes": rows,
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def _print_results(results: dict) -> None:
    print(f"{'paths':>6} {'batch':>9} {'pairwise':>9} {'speedup':>8}")
    for row in results["sizes"]:
        print(
            f"{row['total_paths']:>6} {row['batch_seconds']:>8.3f}s "
            f"{row['pairwise_seconds']:>8.3f}s {row['speedup']:>7.2f}x"
        )


def test_engine_speedup():
    """The batch engine is at least 3x faster on the largest problem size."""
    results = collect_results()
    write_results(results)
    _print_results(results)
    largest = max(results["sizes"], key=lambda row: row["total_paths"])
    assert largest["speedup"] >= 3.0, (
        f"expected >= 3x speedup on the largest size, got {largest['speedup']}x"
    )


if __name__ == "__main__":
    collected = collect_results()
    destination = write_results(collected)
    _print_results(collected)
    print(f"\nresults written to {destination}")
