"""Figure 12: quality of the best matcher combinations (no-reuse and reuse).

For every matcher combination (pair-wise, All, Schema combinations) the best
series over the evaluated grid is selected and its average Precision / Recall /
Overall reported, sorted by Overall as in the paper.  Also reproduces the
Section 7.2 vote that selects the default combination strategy.
"""

from __future__ import annotations

import pytest

from repro.evaluation.analysis import best_combination_quality, default_strategy_selection
from repro.evaluation.report import format_key_values, format_table


@pytest.mark.benchmark(group="figure12")
def test_figure12_best_matcher_combinations(benchmark, no_reuse_results, reuse_results):
    rows = benchmark(lambda: best_combination_quality(list(no_reuse_results) + list(reuse_results)))
    print()
    print(format_table(
        [{**row.as_row(), "strategy": row.spec.label()} for row in rows],
        title="Figure 12: quality of best matcher combinations",
    ))

    by_label = {row.label: row.quality for row in rows}
    # The combination of all five hybrid matchers is among the evaluated combinations.
    assert "All" in by_label
    # Reuse combinations beat the no-reuse combinations (paper Section 7.3).
    no_reuse_best = max(q.overall for label, q in by_label.items() if "Schema" not in label)
    reuse_best = max(q.overall for label, q in by_label.items() if "Schema" in label)
    assert reuse_best > no_reuse_best
    # Combinations with NamePath achieve high precision (paper: > 0.9 for reuse combos).
    name_path_combos = [q for label, q in by_label.items() if "NamePath" in label]
    assert max(q.precision for q in name_path_combos) >= 0.7
    # The best no-reuse combination clearly beats the weakest one.
    no_reuse_overalls = [q.overall for label, q in by_label.items() if "Schema" not in label]
    assert max(no_reuse_overalls) - min(no_reuse_overalls) > 0.1


@pytest.mark.benchmark(group="figure12")
def test_section72_default_strategy_vote(benchmark, no_reuse_results):
    choice = benchmark(lambda: default_strategy_selection(no_reuse_results))
    print()
    print(format_key_values(
        [
            ("best combination", choice.best_label),
            ("best average Overall", choice.best_overall),
            ("aggregation votes", str(choice.aggregation_votes)),
            ("direction votes", str(choice.direction_votes)),
            ("selection votes", str(choice.selection_votes)),
            ("combined-similarity votes", str(choice.combined_votes)),
        ],
        title="Section 7.2: default-strategy vote over the best combination series",
    ))
    # The paper's conclusion: Average aggregation and Both direction dominate the
    # best series of the matcher combinations.
    assert choice.aggregation_votes.get("Average", 0) >= max(
        choice.aggregation_votes.get("Max", 0), choice.aggregation_votes.get("Min", 0)
    )
    assert choice.direction_votes.get("Both", 0) >= max(
        choice.direction_votes.get("LargeSmall", 0), choice.direction_votes.get("SmallLarge", 0)
    )
    assert choice.best_overall > 0
