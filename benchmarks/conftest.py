"""Shared fixtures for the benchmark harness.

The expensive work -- executing every matcher over the 10 match tasks and
evaluating the strategy grid -- happens once per session in these fixtures;
the individual benchmarks then regenerate their table or figure from the
cached results and time the (cheap, repeatable) analysis step.

Set ``COMA_FULL_GRID=1`` to evaluate the paper's full Table 6 selection grid
instead of the representative reduced grid (slower by roughly an order of
magnitude).
"""

from __future__ import annotations

import pytest

from repro.datasets.gold_standard import load_all_tasks
from repro.evaluation.campaign import EvaluationCampaign
from repro.evaluation.grid import (
    enumerate_series,
    no_reuse_matcher_usages,
    reuse_matcher_usages,
    selection_strategies,
)


def pytest_configure(config):
    config.addinivalue_line("markers", "benchmark: benchmark harness tests")


@pytest.fixture(scope="session")
def tasks():
    """The 10 evaluation match tasks."""
    return load_all_tasks()


@pytest.fixture(scope="session")
def campaign(tasks):
    """The prepared evaluation campaign over all 10 tasks (matchers run once)."""
    return EvaluationCampaign(tasks=tasks).prepare()


@pytest.fixture(scope="session")
def no_reuse_results(campaign):
    """All no-reuse series of the (reduced or full) grid, evaluated once."""
    series = list(
        enumerate_series(no_reuse_matcher_usages(), selections=selection_strategies())
    )
    return campaign.evaluate_many(series)


@pytest.fixture(scope="session")
def reuse_results(campaign):
    """Reuse series (SchemaM / SchemaA usages) of the grid, evaluated once.

    By default the reuse usages are swept over a focused selection sub-grid
    (the strategies the paper identifies as relevant for reuse combinations);
    ``COMA_FULL_GRID=1`` switches to the full selection dimension.
    """
    import os

    from repro.combination.selection import CombinedSelection, MaxDelta, MaxN, Threshold

    if os.environ.get("COMA_FULL_GRID", "") == "1":
        selections = selection_strategies(full=True)
    else:
        selections = [
            MaxN(1),
            MaxDelta(0.1),
            CombinedSelection([Threshold(0.5), MaxN(1)]),
            CombinedSelection([Threshold(0.5), MaxDelta(0.02)]),
        ]
    series = list(enumerate_series(reuse_matcher_usages(), selections=selections))
    return campaign.evaluate_many(series)
