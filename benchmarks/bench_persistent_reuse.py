"""Persistent reuse: cold process restarts with vs. without the similarity store.

COMA's reuse idea only pays off if it survives the process: a service restart
must not re-pay the full kernel cost of every schema pair it has already
matched.  This benchmark measures exactly that, with *real* process restarts:

* a **populate** child process runs the Figure-8 all-pairs campaign with a
  fresh :class:`~repro.repository.store.SimilarityStore`, writing every cube
  and token artifact to disk;
* a **warm** child process (new interpreter, empty in-memory caches) re-runs
  the same campaign against the populated store;
* a **cold** child process runs it with no store at all.

All three produce byte-identical mappings (asserted via a SHA-256 digest of
every correspondence row).  The campaign itself is timed inside the child --
interpreter start-up and schema loading are excluded, so the ratio isolates
what the store saves: matcher execution.

Two secondary measurements ride along:

* the **kernel memo pool** hit rate of each child (cross-schema string-kernel
  dedup within one process);
* a micro-benchmark of the vectorized batch Levenshtein
  (:func:`~repro.matchers.string.edit_distance.levenshtein_distance_many`)
  against the scalar DP on the campaign's unique name-pair set.

Results are recorded in ``BENCH_reuse.json`` at the repository root.

Run directly::

    python benchmarks/bench_persistent_reuse.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_persistent_reuse.py -q -s
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

RESULT_PATH = REPO_ROOT / "BENCH_reuse.json"

#: Cold/warm child runs per variant; the minimum is reported.
REPEATS = 2

#: Each pair is matched under the paper's default hybrid usage *and* a
#: simple-string-matcher usage: the latter drives the scalar kernels
#: (EditDistance, Affix, Soundex) whose cross-schema dedup the kernel memo
#: pool and the batch Levenshtein exist for.
STRATEGY_SPECS = (
    "All(Average,Both,Thr(0.5)+Delta(0.02),Average)",
    "Affix+EditDistance+Soundex+Trigram(Average,Both,Thr(0.5)+Delta(0.02),Average)",
)


# -- the child: one cold process running the campaign ---------------------------


def _campaign_pairs():
    from repro.datasets.gold_standard import load_all_tasks

    schemas = {}
    for task in load_all_tasks():
        schemas[task.source.name] = task.source
        schemas[task.target.name] = task.target
    ordered = [schemas[name] for name in sorted(schemas)]
    return ordered, [
        (source, target, spec)
        for i, source in enumerate(ordered)
        for target in ordered[i + 1 :]
        for spec in STRATEGY_SPECS
    ]


def run_child(store_path: str | None) -> dict:
    """Run the all-pairs campaign once in *this* process and report on it."""
    from repro.matchers.memo import DEFAULT_MEMO_POOL
    from repro.session import MatchSession

    schemas, work = _campaign_pairs()
    session = MatchSession(store=store_path)
    started = time.perf_counter()
    outcomes = session.match_many(work)
    seconds = time.perf_counter() - started
    digest = hashlib.sha256()
    for outcome in outcomes:
        for c in outcome.result.correspondences:
            digest.update(
                f"{c.source.dotted()}|{c.target.dotted()}|{c.similarity!r}\n".encode()
            )
    if store_path is not None:
        session.store.close()  # flush writes + persist lifetime counters
    return {
        "seconds": seconds,
        "schemas": len(schemas),
        "operations": len(work),
        "mapping_digest": digest.hexdigest(),
        "session_cache": session.cache_info(),
        "kernel_memo": DEFAULT_MEMO_POOL.info(),
    }


# -- the parent: orchestrate real process restarts -------------------------------


def _spawn(store_path: str | None) -> dict:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    command = [sys.executable, str(Path(__file__).resolve()), "--child"]
    if store_path is not None:
        command.append(store_path)
    completed = subprocess.run(
        command, capture_output=True, text=True, env=environment, check=False
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"benchmark child failed ({completed.returncode}):\n{completed.stderr}"
        )
    return json.loads(completed.stdout)


def _best_child(store_path: str | None, repeats: int = REPEATS) -> dict:
    best = None
    for _ in range(repeats):
        report = _spawn(store_path)
        if best is None or report["seconds"] < best["seconds"]:
            best = report
    return best


def _bench_levenshtein_kernel() -> dict:
    """Scalar DP loop vs. the numpy batch kernel on the campaign's name pairs."""
    from repro.matchers.string.edit_distance import (
        levenshtein_distance,
        levenshtein_distance_many,
    )

    schemas, _ = _campaign_pairs()
    names = sorted({path.name.lower() for schema in schemas for path in schema.paths()})
    pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]

    started = time.perf_counter()
    scalar = [levenshtein_distance(a, b) for a, b in pairs]
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch = levenshtein_distance_many(pairs)
    batch_seconds = time.perf_counter() - started

    if batch.tolist() != scalar:
        raise AssertionError("batch Levenshtein disagrees with the scalar DP")
    return {
        "unique_names": len(names),
        "pairs": len(pairs),
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(scalar_seconds / batch_seconds, 2),
    }


def collect_results() -> dict:
    store_path = os.path.join(tempfile.mkdtemp(prefix="coma-bench-store-"), "store.db")
    populate = _spawn(store_path)  # first run writes the store
    warm = _best_child(store_path)
    cold = _best_child(None)

    digests = {populate["mapping_digest"], warm["mapping_digest"], cold["mapping_digest"]}
    if len(digests) != 1:
        raise AssertionError(
            f"store-enabled and store-less mappings differ: {sorted(digests)}"
        )
    store_size = os.path.getsize(store_path)
    return {
        "benchmark": "persistent_reuse",
        "description": (
            "Figure-8 all-pairs campaign in fresh processes: cold (no store) vs "
            "warm (content-addressed similarity store populated by an earlier "
            "process); mappings asserted byte-identical"
        ),
        "python": platform.python_version(),
        "repeats": REPEATS,
        "schemas": cold["schemas"],
        "operations": cold["operations"],
        "strategies_per_pair": len(STRATEGY_SPECS),
        "cold_process_seconds": round(cold["seconds"], 4),
        "warm_store_seconds": round(warm["seconds"], 4),
        "populate_seconds": round(populate["seconds"], 4),
        "speedup": round(cold["seconds"] / warm["seconds"], 2),
        "mapping_digest": cold["mapping_digest"],
        "store_bytes": store_size,
        "warm_session_cache": warm["session_cache"],
        "cold_kernel_memo": cold["kernel_memo"],
        "levenshtein_kernel": _bench_levenshtein_kernel(),
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def _print_results(results: dict) -> None:
    print(
        f"{results['operations']} operations over {results['schemas']} schemas: "
        f"cold process {results['cold_process_seconds']:.3f}s, "
        f"warm store {results['warm_store_seconds']:.3f}s, "
        f"speedup {results['speedup']:.2f}x "
        f"(store: {results['store_bytes'] / 1e6:.2f} MB)"
    )
    memo = results["cold_kernel_memo"]
    lookups = memo["hits"] + memo["misses"]
    rate = memo["hits"] / lookups if lookups else 0.0
    print(f"kernel memo (cold process): {memo['hits']} hits / {lookups} lookups "
          f"({rate:.1%}), {memo['entries']} entries")
    kernel = results["levenshtein_kernel"]
    print(
        f"batch Levenshtein: {kernel['pairs']} unique pairs, "
        f"scalar {kernel['scalar_seconds']:.3f}s vs batch "
        f"{kernel['batch_seconds']:.3f}s ({kernel['speedup']:.1f}x)"
    )


def test_persistent_reuse_speedup():
    """A cold process with a warm store beats a store-less cold process >= 3x."""
    results = collect_results()
    write_results(results)
    _print_results(results)
    assert results["speedup"] >= 3.0, (
        f"expected >= 3x cold-restart speedup with the store, got {results['speedup']}x"
    )
    # every pair was served from the store, none executed matchers
    cache = results["warm_session_cache"]
    assert cache["store_hits"] == results["operations"] and cache["store_misses"] == 0
    # the vectorized Levenshtein kernel must beat the scalar loop
    assert results["levenshtein_kernel"]["speedup"] > 1.0


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        child_store = sys.argv[2] if len(sys.argv) > 2 else None
        print(json.dumps(run_child(child_store)))
    else:
        collected = collect_results()
        destination = write_results(collected)
        _print_results(collected)
        print(f"\nresults written to {destination}")
