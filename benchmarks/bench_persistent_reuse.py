"""Persistent reuse: cold process restarts with vs. without the similarity store.

COMA's reuse idea only pays off if it survives the process: a service restart
must not re-pay the full kernel cost of every schema pair it has already
matched.  This benchmark measures exactly that, with *real* process restarts:

* a **populate** child process runs the Figure-8 all-pairs campaign with a
  fresh :class:`~repro.repository.store.SimilarityStore`, writing every cube
  and token artifact to disk;
* a **warm** child process (new interpreter, empty in-memory caches) re-runs
  the same campaign against the populated store;
* a **cold** child process runs it with no store at all.

All three produce byte-identical mappings (asserted via a SHA-256 digest of
every correspondence row).  The campaign itself is timed inside the child --
interpreter start-up and schema loading are excluded, so the ratio isolates
what the store saves: matcher execution.

Two secondary measurements ride along:

* the **kernel memo pool** hit rate of each child (cross-schema string-kernel
  dedup within one process);
* a **kernel sweep** of :func:`~repro.matchers.string.edit_distance
  .levenshtein_distance_many` on the campaign's unique name-pair set: the
  scalar DP loop vs. the padded batch DP (``kernel="dp"``) vs. the default
  Myers bit-parallel ladder (gated >= 2x over the batch DP);
* a **store-dtype sweep**: the campaign persisted under ``float64`` /
  ``float32`` / quantized ``uint16`` cube storage, recording payload bytes
  and the reloaded warm mapping digests (gated: ``uint16`` stores at most
  30% of the ``float64`` payload bytes).

Results are recorded in ``BENCH_reuse.json`` at the repository root.

Run directly::

    python benchmarks/bench_persistent_reuse.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_persistent_reuse.py -q -s
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

RESULT_PATH = REPO_ROOT / "BENCH_reuse.json"

#: Cold/warm child runs per variant; the minimum is reported.
REPEATS = 2

#: Each pair is matched under the paper's default hybrid usage *and* a
#: simple-string-matcher usage: the latter drives the scalar kernels
#: (EditDistance, Affix, Soundex) whose cross-schema dedup the kernel memo
#: pool and the batch Levenshtein exist for.
STRATEGY_SPECS = (
    "All(Average,Both,Thr(0.5)+Delta(0.02),Average)",
    "Affix+EditDistance+Soundex+Trigram(Average,Both,Thr(0.5)+Delta(0.02),Average)",
)


# -- the child: one cold process running the campaign ---------------------------


def _campaign_pairs():
    from repro.datasets.gold_standard import load_all_tasks

    schemas = {}
    for task in load_all_tasks():
        schemas[task.source.name] = task.source
        schemas[task.target.name] = task.target
    ordered = [schemas[name] for name in sorted(schemas)]
    return ordered, [
        (source, target, spec)
        for i, source in enumerate(ordered)
        for target in ordered[i + 1 :]
        for spec in STRATEGY_SPECS
    ]


def run_child(store_path: str | None, store_dtype: str | None = None) -> dict:
    """Run the all-pairs campaign once in *this* process and report on it."""
    from repro.matchers.memo import DEFAULT_MEMO_POOL
    from repro.session import MatchSession

    schemas, work = _campaign_pairs()
    session = MatchSession(store=store_path, store_dtype=store_dtype)
    started = time.perf_counter()
    outcomes = session.match_many(work)
    seconds = time.perf_counter() - started
    digest = hashlib.sha256()
    for outcome in outcomes:
        for c in outcome.result.correspondences:
            digest.update(
                f"{c.source.dotted()}|{c.target.dotted()}|{c.similarity!r}\n".encode()
            )
    if store_path is not None:
        session.store.close()  # flush writes + persist lifetime counters
    return {
        "seconds": seconds,
        "schemas": len(schemas),
        "operations": len(work),
        "mapping_digest": digest.hexdigest(),
        "session_cache": session.cache_info(),
        "kernel_memo": DEFAULT_MEMO_POOL.info(),
    }


# -- the parent: orchestrate real process restarts -------------------------------


def _spawn(store_path: str | None, store_dtype: str | None = None) -> dict:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    command = [sys.executable, str(Path(__file__).resolve()), "--child"]
    if store_path is not None:
        command.append(store_path)
        if store_dtype is not None:
            command.append(store_dtype)
    completed = subprocess.run(
        command, capture_output=True, text=True, env=environment, check=False
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"benchmark child failed ({completed.returncode}):\n{completed.stderr}"
        )
    return json.loads(completed.stdout)


def _best_child(store_path: str | None, repeats: int = REPEATS) -> dict:
    best = None
    for _ in range(repeats):
        report = _spawn(store_path)
        if best is None or report["seconds"] < best["seconds"]:
            best = report
    return best


def _bench_levenshtein_kernels() -> dict:
    """Kernel sweep on the campaign's name pairs: scalar DP loop vs. the
    padded batch DP (``kernel="dp"``) vs. the Myers bit-parallel default."""
    from repro.matchers.string.edit_distance import (
        levenshtein_distance_dp,
        levenshtein_distance_many,
    )

    schemas, _ = _campaign_pairs()
    names = sorted({path.name.lower() for schema in schemas for path in schema.paths()})
    pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]

    def best_of(function, repeats: int = 3):
        seconds, result = None, None
        for _ in range(repeats):
            started = time.perf_counter()
            result = function()
            elapsed = time.perf_counter() - started
            seconds = elapsed if seconds is None else min(seconds, elapsed)
        return seconds, result

    scalar_seconds, scalar = best_of(
        lambda: [levenshtein_distance_dp(a, b) for a, b in pairs], repeats=1
    )
    dp_seconds, dp_batch = best_of(
        lambda: levenshtein_distance_many(pairs, kernel="dp")
    )
    bit_seconds, bit_batch = best_of(lambda: levenshtein_distance_many(pairs))

    if dp_batch.tolist() != scalar:
        raise AssertionError("batch-DP Levenshtein disagrees with the scalar DP")
    if bit_batch.tolist() != scalar:
        raise AssertionError("bit-parallel Levenshtein disagrees with the scalar DP")
    return {
        "unique_names": len(names),
        "pairs": len(pairs),
        "scalar_dp_seconds": round(scalar_seconds, 4),
        "batch_dp_seconds": round(dp_seconds, 4),
        "bitparallel_seconds": round(bit_seconds, 4),
        "speedup_batch_dp_vs_scalar": round(scalar_seconds / dp_seconds, 2),
        "speedup_bitparallel_vs_scalar": round(scalar_seconds / bit_seconds, 2),
        "speedup_bitparallel_vs_batch_dp": round(dp_seconds / bit_seconds, 2),
    }


def _store_disk_bytes(store_path: str) -> int:
    """The store's total on-disk footprint: db + WAL + external side files."""
    total = 0
    for candidate in (store_path, store_path + "-wal", store_path + "-shm"):
        if os.path.exists(candidate):
            total += os.path.getsize(candidate)
    blobs = store_path + ".blobs"
    if os.path.isdir(blobs):
        total += sum(
            os.path.getsize(os.path.join(blobs, name)) for name in os.listdir(blobs)
        )
    return total


def _bench_store_dtypes(float64_store_path: str, float64_warm: dict) -> dict:
    """The campaign persisted under each cube storage dtype.

    The ``float64`` entry reuses the main run's populated store and warm
    child; the compact tiers each populate a fresh store in one child and
    reload it in another, so the recorded warm digests really cross a
    process restart.
    """
    from repro.repository.store import SimilarityStore

    sweep = {}
    for dtype in ("float64", "float32", "uint16"):
        if dtype == "float64":
            path, warm = float64_store_path, float64_warm
        else:
            path = os.path.join(
                tempfile.mkdtemp(prefix=f"coma-bench-store-{dtype}-"), "store.db"
            )
            _spawn(path, dtype)  # populate
            warm = _spawn(path, dtype)
        with SimilarityStore(path, writer=False) as store:
            info = store.info()
        cache = warm["session_cache"]
        if cache["store_hits"] != warm["operations"] or cache["store_misses"]:
            raise AssertionError(
                f"{dtype} warm child was not fully served from the store: {cache}"
            )
        sweep[dtype] = {
            "cube_payload_bytes": info["cube_bytes"],
            "store_disk_bytes": _store_disk_bytes(path),
            "cubes": info["cubes"],
            "warm_mapping_digest": warm["mapping_digest"],
        }
    for dtype in ("float32", "uint16"):
        sweep[dtype]["matches_float64_mapping"] = (
            sweep[dtype]["warm_mapping_digest"]
            == sweep["float64"]["warm_mapping_digest"]
        )
        sweep[dtype]["payload_ratio_vs_float64"] = round(
            sweep[dtype]["cube_payload_bytes"]
            / sweep["float64"]["cube_payload_bytes"],
            4,
        )
    return sweep


def collect_results() -> dict:
    store_path = os.path.join(tempfile.mkdtemp(prefix="coma-bench-store-"), "store.db")
    populate = _spawn(store_path)  # first run writes the store
    warm = _best_child(store_path)
    cold = _best_child(None)

    digests = {populate["mapping_digest"], warm["mapping_digest"], cold["mapping_digest"]}
    if len(digests) != 1:
        raise AssertionError(
            f"store-enabled and store-less mappings differ: {sorted(digests)}"
        )
    store_size = os.path.getsize(store_path)
    return {
        "benchmark": "persistent_reuse",
        "description": (
            "Figure-8 all-pairs campaign in fresh processes: cold (no store) vs "
            "warm (content-addressed similarity store populated by an earlier "
            "process); mappings asserted byte-identical"
        ),
        "python": platform.python_version(),
        "repeats": REPEATS,
        "schemas": cold["schemas"],
        "operations": cold["operations"],
        "strategies_per_pair": len(STRATEGY_SPECS),
        "cold_process_seconds": round(cold["seconds"], 4),
        "warm_store_seconds": round(warm["seconds"], 4),
        "populate_seconds": round(populate["seconds"], 4),
        "speedup": round(cold["seconds"] / warm["seconds"], 2),
        "mapping_digest": cold["mapping_digest"],
        "store_bytes": store_size,
        "warm_session_cache": warm["session_cache"],
        "cold_kernel_memo": cold["kernel_memo"],
        "levenshtein_kernels": _bench_levenshtein_kernels(),
        "store_dtypes": _bench_store_dtypes(store_path, warm),
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def _print_results(results: dict) -> None:
    print(
        f"{results['operations']} operations over {results['schemas']} schemas: "
        f"cold process {results['cold_process_seconds']:.3f}s, "
        f"warm store {results['warm_store_seconds']:.3f}s, "
        f"speedup {results['speedup']:.2f}x "
        f"(store: {results['store_bytes'] / 1e6:.2f} MB)"
    )
    memo = results["cold_kernel_memo"]
    lookups = memo["hits"] + memo["misses"]
    rate = memo["hits"] / lookups if lookups else 0.0
    print(f"kernel memo (cold process): {memo['hits']} hits / {lookups} lookups "
          f"({rate:.1%}), {memo['entries']} entries")
    kernels = results["levenshtein_kernels"]
    print(
        f"Levenshtein kernels on {kernels['pairs']} unique pairs: "
        f"scalar DP {kernels['scalar_dp_seconds']:.3f}s, "
        f"batch DP {kernels['batch_dp_seconds']:.3f}s, "
        f"bit-parallel {kernels['bitparallel_seconds']:.3f}s "
        f"({kernels['speedup_bitparallel_vs_batch_dp']:.1f}x over batch DP, "
        f"{kernels['speedup_bitparallel_vs_scalar']:.1f}x over scalar)"
    )
    for dtype, entry in results["store_dtypes"].items():
        ratio = entry.get("payload_ratio_vs_float64")
        suffix = f", {ratio:.0%} of float64" if ratio is not None else ""
        print(
            f"store dtype {dtype}: {entry['cube_payload_bytes'] / 1e6:.2f} MB "
            f"cube payload over {entry['cubes']} cubes{suffix}"
        )


def test_persistent_reuse_speedup():
    """A cold process with a warm store beats a store-less cold process >= 3x."""
    results = collect_results()
    write_results(results)
    _print_results(results)
    assert results["speedup"] >= 3.0, (
        f"expected >= 3x cold-restart speedup with the store, got {results['speedup']}x"
    )
    # every pair was served from the store, none executed matchers
    cache = results["warm_session_cache"]
    assert cache["store_hits"] == results["operations"] and cache["store_misses"] == 0
    # the kernel ladder: bit-parallel >= 2x over the padded batch DP (and
    # both leave the scalar loop far behind)
    kernels = results["levenshtein_kernels"]
    assert kernels["speedup_bitparallel_vs_batch_dp"] >= 2.0, kernels
    assert kernels["speedup_bitparallel_vs_scalar"] > 1.0, kernels
    # the quantized store tier stores at most 30% of the float64 payload
    sweep = results["store_dtypes"]
    assert sweep["uint16"]["payload_ratio_vs_float64"] <= 0.30, sweep
    assert sweep["float32"]["payload_ratio_vs_float64"] <= 0.55, sweep


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        child_store = sys.argv[2] if len(sys.argv) > 2 else None
        child_dtype = sys.argv[3] if len(sys.argv) > 3 else None
        print(json.dumps(run_child(child_store, child_dtype)))
    else:
        collected = collect_results()
        destination = write_results(collected)
        _print_results(collected)
        print(f"\nresults written to {destination}")
