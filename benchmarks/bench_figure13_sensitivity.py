"""Figure 13: impact of schema characteristics (size, similarity) on match quality.

For every task the best per-task Overall achieved by any no-reuse series and by
any (manual) reuse series is reported next to the task's total path count and
schema similarity.  The paper's observations are asserted as shape checks:
reuse beats no-reuse per task, and quality tends to degrade for the largest
match problems.
"""

from __future__ import annotations

import pytest

from repro.evaluation.analysis import sensitivity_by_task
from repro.evaluation.report import format_table


@pytest.mark.benchmark(group="figure13")
def test_figure13_match_sensitivity(benchmark, campaign, no_reuse_results, reuse_results):
    manual_reuse = [r for r in reuse_results if "SchemaM" in r.spec.matchers]
    rows = benchmark(
        lambda: sensitivity_by_task(campaign, no_reuse_results, manual_reuse)
    )
    print()
    print(format_table(
        [row.as_row() for row in rows],
        title="Figure 13: best Overall per task vs schema size and similarity",
    ))

    assert len(rows) == 10
    # Reuse beats (or at least matches) the no-reuse approaches on every task.
    for row in rows:
        assert row.best_reuse_overall is not None
        assert row.best_reuse_overall >= row.best_no_reuse_overall - 1e-9
    # Quality degrades with problem size: the largest tasks do not beat the smallest
    # task's best no-reuse Overall.
    smallest = min(rows, key=lambda r: r.total_paths)
    largest = max(rows, key=lambda r: r.total_paths)
    assert largest.best_no_reuse_overall <= smallest.best_no_reuse_overall + 0.1
    # Every per-task best is a usable result (positive Overall) for the no-reuse case.
    assert all(row.best_no_reuse_overall > 0 for row in rows)
