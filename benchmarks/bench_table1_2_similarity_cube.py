"""Tables 1 and 2: matcher-specific and aggregated similarities for the Figure 1 schemas.

Table 1 of the paper shows TypeName and NamePath similarities for selected
PO1/PO2 path pairs; Table 2 shows the Average-aggregated values.  This bench
regenerates both tables for the same path pairs from our reproduction of the
Figure 1 schemas.
"""

from __future__ import annotations

import pytest

from repro.combination.aggregation import AVERAGE
from repro.combination.cube import SimilarityCube
from repro.core.match_operation import build_context
from repro.datasets.figure1 import load_po1, load_po2
from repro.evaluation.report import format_table
from repro.matchers.hybrid import NamePathMatcher, TypeNameMatcher

#: The PO1 paths of Table 1 and the common PO2 target path.
_PO1_PATHS = ("PO1.ShipTo.shipToCity", "PO1.ShipTo.shipToStreet", "PO1.Customer.custCity")
_PO2_PATH = "PO2.PO2.DeliverTo.Address.City"


def _build_cube():
    po1, po2 = load_po1(), load_po2()
    context = build_context(po1, po2)
    cube = SimilarityCube(po1.paths(), po2.paths())
    cube.add_layer("TypeName", TypeNameMatcher().compute(po1.paths(), po2.paths(), context))
    cube.add_layer("NamePath", NamePathMatcher().compute(po1.paths(), po2.paths(), context))
    return po1, po2, cube


@pytest.mark.benchmark(group="table1-2")
def test_table1_and_table2_similarity_cube(benchmark):
    po1, po2, cube = _build_cube()
    target = po2.find_path(_PO2_PATH)

    def regenerate():
        table1_rows = []
        for matcher_name in cube.matcher_names:
            layer = cube.layer(matcher_name)
            for source_string in _PO1_PATHS:
                source = po1.find_path(source_string)
                table1_rows.append(
                    {
                        "matcher": matcher_name,
                        "po1_element": source_string,
                        "po2_element": _PO2_PATH,
                        "sim": layer.get(source, target),
                    }
                )
        aggregated = AVERAGE.aggregate(cube)
        table2_rows = [
            {
                "po1_element": source_string,
                "po2_element": _PO2_PATH,
                "combined_sim": aggregated.get(po1.find_path(source_string), target),
            }
            for source_string in _PO1_PATHS
        ]
        return table1_rows, table2_rows

    table1_rows, table2_rows = benchmark(regenerate)
    print()
    print(format_table(table1_rows, title="Table 1: matcher-specific similarities (reproduction)"))
    print()
    print(format_table(table2_rows, title="Table 2: Average-aggregated similarities (reproduction)"))

    # Shape checks mirroring the paper: the city/city pairs dominate the street pair,
    # and aggregation keeps that ordering.
    by_pair = {(r["matcher"], r["po1_element"]): r["sim"] for r in table1_rows}
    assert by_pair[("NamePath", "PO1.ShipTo.shipToCity")] > by_pair[("NamePath", "PO1.ShipTo.shipToStreet")]
    combined = {r["po1_element"]: r["combined_sim"] for r in table2_rows}
    assert combined["PO1.ShipTo.shipToCity"] > combined["PO1.ShipTo.shipToStreet"]
