"""Table 6: the tested matchers and combination strategies (the evaluation grid).

Regenerates the grid dimensions (matcher usages, aggregation, direction,
selection, combined similarity) and the resulting series counts, mirroring the
accounting of Table 6 (16 no-reuse + 14 reuse usages; aggregation and
combined-similarity dimensions collapse for single matchers / single reuse
matchers respectively).
"""

from __future__ import annotations

import pytest

from repro.evaluation.grid import (
    AGGREGATIONS,
    COMBINED_SIMILARITY_VARIANTS,
    DIRECTIONS,
    enumerate_series,
    full_selection_strategies,
    no_reuse_matcher_usages,
    reuse_matcher_usages,
)
from repro.evaluation.report import format_table


@pytest.mark.benchmark(group="table6")
def test_table6_grid_dimensions_and_series_counts(benchmark):
    def regenerate():
        selections = full_selection_strategies()
        no_reuse = list(enumerate_series(no_reuse_matcher_usages(), selections=selections))
        reuse = list(enumerate_series(reuse_matcher_usages(), selections=selections))
        return {
            "no_reuse_usages": len(no_reuse_matcher_usages()),
            "reuse_usages": len(reuse_matcher_usages()),
            "aggregations": len(AGGREGATIONS),
            "directions": len(DIRECTIONS),
            "selections": len(selections),
            "combined_similarities": len(COMBINED_SIMILARITY_VARIANTS),
            "no_reuse_series": len(no_reuse),
            "reuse_series": len(reuse),
            "total_series": len(no_reuse) + len(reuse),
        }

    counts = benchmark(regenerate)
    rows = [{"dimension": key, "count": value} for key, value in counts.items()]
    print()
    print(format_table(rows, title="Table 6: tested matchers and combination strategies"))

    # The paper's accounting: 16 no-reuse and 14 reuse matcher usages, 3 aggregations,
    # 3 directions, ~36 selection strategies, 2 combined-similarity variants.
    assert counts["no_reuse_usages"] == 16
    assert counts["reuse_usages"] == 14
    assert counts["aggregations"] == 3
    assert counts["directions"] == 3
    assert counts["selections"] >= 30
    assert counts["combined_similarities"] == 2
    # the paper ran 12,312 series over this grid; the full enumeration here is
    # of the same order of magnitude
    assert 5_000 <= counts["total_series"] <= 40_000
