"""Session reuse: MatchSession.match_many vs. fresh per-pair match() calls.

Times the Figure-8 style all-pairs campaign -- every bundled task schema
matched against every other, each pair evaluated under several combination
strategies (the workload of the paper's strategy-tuning experiments, which
re-match the same pairs while varying the combination 4-tuple):

* the **fresh** path calls the stateless ``match_with_strategy`` free function
  once per (pair, strategy), rebuilding tokenizer, synonyms, path profiles and
  the similarity cube every time, as the pre-session public API did;
* the **session** path hands the same work list to
  :meth:`~repro.session.session.MatchSession.match_many`, which builds each
  schema's path profile once per session and serves repeated (pair, matcher
  usage) executions from the cube cache, so only the combination pipeline
  re-runs per strategy.

Both paths produce byte-identical correspondences (asserted).  Results are
recorded in ``BENCH_session.json`` at the repository root.

Run directly::

    python benchmarks/bench_session_reuse.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_session_reuse.py -q -s
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.match_operation import build_context, match_with_strategy  # noqa: E402
from repro.core.strategy import MatchStrategy  # noqa: E402
from repro.datasets.gold_standard import load_all_tasks  # noqa: E402
from repro.session import MatchSession  # noqa: E402

#: The combination strategies evaluated per pair: the paper's default plus two
#: Table 6 variants (same matcher usage, different combination tuples).
STRATEGY_SPECS = (
    "All(Average,Both,Thr(0.5)+Delta(0.02),Average)",
    "All(Max,Both,Thr(0.5)+MaxN(1),Average)",
    "All(Average,Both,Thr(0.6),Dice)",
)

REPEATS = 3

RESULT_PATH = REPO_ROOT / "BENCH_session.json"


def _campaign_schemas():
    """The distinct schemas of the bundled evaluation tasks, by name."""
    schemas = {}
    for task in load_all_tasks():
        schemas[task.source.name] = task.source
        schemas[task.target.name] = task.target
    return [schemas[name] for name in sorted(schemas)]


def _work_list():
    """(source, target, spec) for every unordered schema pair and strategy."""
    schemas = _campaign_schemas()
    work = []
    for i, source in enumerate(schemas):
        for target in schemas[i + 1 :]:
            for spec in STRATEGY_SPECS:
                work.append((source, target, spec))
    return work


def _correspondence_rows(outcome):
    return [
        (c.source.dotted(), c.target.dotted(), c.similarity)
        for c in outcome.result.correspondences
    ]


def _run_fresh(work):
    """The stateless path: everything rebuilt per (pair, strategy) call."""
    strategies = {spec: MatchStrategy.parse(spec) for spec in STRATEGY_SPECS}
    outcomes = []
    for source, target, spec in work:
        context = build_context(source, target)
        outcomes.append(match_with_strategy(source, target, strategies[spec], context=context))
    return outcomes


def _run_session(work):
    """The session path: one session amortises profiles and cubes."""
    session = MatchSession()
    return session.match_many(work), session


def _best_of(callable_, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


def collect_results() -> dict:
    work = _work_list()
    fresh_seconds, fresh_outcomes = _best_of(lambda: _run_fresh(work))
    session_seconds, (session_outcomes, session) = _best_of(lambda: _run_session(work))

    fresh_rows = [_correspondence_rows(outcome) for outcome in fresh_outcomes]
    session_rows = [_correspondence_rows(outcome) for outcome in session_outcomes]
    if fresh_rows != session_rows:
        raise AssertionError("session and fresh paths produced different mappings")

    pairs = len(work) // len(STRATEGY_SPECS)
    info = session.cache_info()
    return {
        "benchmark": "session_reuse",
        "description": (
            "All-pairs Figure 8 campaign under several combination strategies: "
            "MatchSession.match_many vs fresh per-pair match_with_strategy calls"
        ),
        "python": platform.python_version(),
        "repeats": REPEATS,
        "schemas": len(_campaign_schemas()),
        "pairs": pairs,
        "strategies_per_pair": len(STRATEGY_SPECS),
        "operations": len(work),
        "fresh_seconds": round(fresh_seconds, 4),
        "session_seconds": round(session_seconds, 4),
        "speedup": round(fresh_seconds / session_seconds, 2),
        "session_cache": info,
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def _print_results(results: dict) -> None:
    print(
        f"{results['operations']} operations "
        f"({results['pairs']} pairs x {results['strategies_per_pair']} strategies): "
        f"fresh {results['fresh_seconds']:.3f}s, "
        f"session {results['session_seconds']:.3f}s, "
        f"speedup {results['speedup']:.2f}x"
    )
    print(f"session caches: {results['session_cache']}")


def test_session_reuse_speedup():
    """The session amortises the campaign at least 1.5x over fresh calls."""
    results = collect_results()
    write_results(results)
    _print_results(results)
    assert results["speedup"] >= 1.5, (
        f"expected >= 1.5x session speedup, got {results['speedup']}x"
    )
    # every schema's profile was built exactly once for the whole campaign
    assert results["session_cache"]["profiles"] == results["schemas"]


if __name__ == "__main__":
    collected = collect_results()
    destination = write_results(collected)
    _print_results(collected)
    print(f"\nresults written to {destination}")
