"""Incremental re-matching: MatchSession.rematch vs. a from-scratch match.

The evolving-repository workload: a 200-path schema already matched against a
similarly sized target gets one field renamed -- the canonical "schema
version n+1" edit -- and needs a fresh mapping.  Two ways to get it:

* the **full** path calls ``match()`` on the new pair in a cold session,
  re-running every matcher over every (row, column) pair;
* the **rematch** path hands the old version, the new version and the previous
  outcome to :meth:`~repro.session.session.MatchSession.rematch`, which
  re-runs the matchers only on the rows whose Merkle row signatures changed
  (the renamed leaf and its section) and copies every other cell from the
  previous cube.

Both paths are byte-identical (asserted on the cube floats and the serialized
result -- splicing is an execution shortcut, never an approximation).
Results are recorded in ``BENCH_rematch.json`` at the repository root.

Run directly::

    python benchmarks/bench_rematch.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_rematch.py -q -s
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # script mode without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.generators import generate_schema  # noqa: E402
from repro.model.digests import schema_delta  # noqa: E402
from repro.model.schema import Schema  # noqa: E402
from repro.session import MatchSession  # noqa: E402

#: 40 sections x 4 leaves = 200 paths (sections + leaves + root excluded).
SECTIONS = 40
FIELDS_PER_SECTION = 4

REPEATS = 3

RESULT_PATH = REPO_ROOT / "BENCH_rematch.json"


def _rename_one_leaf(schema: Schema, name: str) -> Schema:
    """A rebuilt copy of ``schema`` with exactly one leaf renamed."""
    victim = schema.leaf_paths()[len(schema.leaf_paths()) // 2]
    victim_dotted = victim.dotted(skip_root=True)
    copy = Schema(name)

    def visit(element, parent, prefix):
        for child in schema.children(element):
            dotted = f"{prefix}.{child.name}" if prefix else child.name
            label = "renamedVersionedField" if dotted == victim_dotted else child.name
            made = copy.add_element(
                label, parent=parent, kind=child.kind,
                source_type=child.source_type, documentation=child.documentation,
            )
            visit(child, made, dotted)

    visit(schema.root, None, "")
    return copy


def _result_sha256(outcome) -> str:
    document = [
        [source, target, float(similarity).hex()]
        for source, target, similarity in outcome.result.as_tuples()
    ]
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _best_of(callable_, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


def collect_results() -> dict:
    old, _ = generate_schema(
        "EvolvingV1", sections=SECTIONS, fields_per_section=FIELDS_PER_SECTION,
        seed=31,
    )
    target, _ = generate_schema(
        "FixedTarget", sections=SECTIONS, fields_per_section=FIELDS_PER_SECTION,
        variant=1, seed=32,
    )
    new = _rename_one_leaf(old, "EvolvingV2")
    delta = schema_delta(old, new)

    def run_full():
        return MatchSession().match(new, target)

    full_seconds, full_outcome = _best_of(run_full)

    # The previous result is the workload's given (it existed before the
    # edit), so each repeat establishes it in a fresh session *outside* the
    # timed region; only the splice itself is timed.  A fresh session per
    # repeat keeps the cube cache from turning later repeats into pure
    # cache hits, which would flatter the measurement.
    rematch_seconds = float("inf")
    rematch_outcome = None
    warm = None
    for _ in range(REPEATS):
        warm = MatchSession()
        previous = warm.match(old, target)
        started = time.perf_counter()
        rematch_outcome = warm.rematch(old, new, previous)
        rematch_seconds = min(rematch_seconds, time.perf_counter() - started)

    # Hard contract: the splice is byte-identical to the from-scratch match.
    if rematch_outcome.cube.as_array().tobytes() != full_outcome.cube.as_array().tobytes():
        raise AssertionError("spliced cube diverged from the from-scratch cube")
    if _result_sha256(rematch_outcome) != _result_sha256(full_outcome):
        raise AssertionError("spliced result diverged from the from-scratch result")
    info = warm.cache_info()
    if not info["rematch_spliced"]:
        raise AssertionError("rematch fell back to a full match; nothing was spliced")

    return {
        "benchmark": "rematch",
        "description": (
            "One renamed field in a 200-path schema: MatchSession.rematch "
            "(row-signature delta + cube splice) vs a from-scratch match of "
            "the new pair"
        ),
        "python": platform.python_version(),
        "repeats": REPEATS,
        "paths": len(old.paths()),
        "target_paths": len(target.paths()),
        "rows_reused": delta.reused,
        "rows_recomputed": delta.recomputed,
        "full_seconds": round(full_seconds, 4),
        "rematch_seconds": round(rematch_seconds, 4),
        "speedup": round(full_seconds / rematch_seconds, 2),
        "byte_identical": True,
    }


def write_results(results: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def _print_results(results: dict) -> None:
    print(
        f"{results['paths']}-path schema, one field renamed "
        f"({results['rows_reused']} rows reused, "
        f"{results['rows_recomputed']} recomputed): "
        f"full {results['full_seconds']:.3f}s, "
        f"rematch {results['rematch_seconds']:.3f}s, "
        f"speedup {results['speedup']:.2f}x"
    )


def test_rematch_speedup():
    """Splicing a one-field edit is at least 5x faster than a full match."""
    results = collect_results()
    write_results(results)
    _print_results(results)
    assert results["byte_identical"]
    assert results["speedup"] >= 5.0, (
        f"expected >= 5x rematch speedup, got {results['speedup']}x"
    )


if __name__ == "__main__":
    collected = collect_results()
    destination = write_results(collected)
    _print_results(collected)
    print(f"\nresults written to {destination}")
