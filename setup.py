"""Legacy setup shim.

The environment this reproduction targets has no ``wheel`` package available
offline, so PEP 660 editable installs (which build a wheel) fail.  This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``; this file only triggers setuptools.
"""

from setuptools import setup

setup()
